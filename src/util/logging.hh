/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a simulator bug), fatal() is for user-caused conditions
 * (bad configuration, impossible parameters), warn()/inform() report
 * conditions that do not stop the run.
 *
 * Thread-safe: the level is atomic and the stderr sink is serialized
 * under a mutex, so messages from concurrent runMany workers never
 * interleave. The initial level comes from the COOLCMP_LOG environment
 * variable (silent, warn, inform, debug, or 0-3; default warn).
 */

#ifndef COOLCMP_UTIL_LOGGING_HH
#define COOLCMP_UTIL_LOGGING_HH

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

namespace coolcmp {

/** Verbosity levels for runtime status messages. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Global log-level accessor. Defaults to Warn. */
LogLevel logLevel();

/** Set the global log level (e.g., Silent in unit tests). */
void setLogLevel(LogLevel level);

/**
 * Set the level only when COOLCMP_LOG did not specify one. Binaries
 * use this for their default verbosity so the user's environment
 * still wins (e.g. COOLCMP_LOG=inform ./bench_table8).
 */
void setDefaultLogLevel(LogLevel level);

/** Per-key print budget for warnLimited before suppression starts. */
inline constexpr std::uint64_t kWarnLimit = 5;

namespace detail {

/** Emit a formatted message with a severity prefix to stderr. */
void emit(const char *prefix, const std::string &msg);

/** What warnLimited should do for this occurrence of `key`. */
struct LimitDecision
{
    bool emitMessage = false;   ///< print the warning itself
    bool announceLimit = false; ///< append the "now suppressing" note
    bool emitSummary = false;   ///< print the "suppressed k similar" line
    std::uint64_t suppressed = 0;
};

/** Count one occurrence of `key` against `limit` (thread-safe). */
LimitDecision noteLimited(const std::string &key, std::uint64_t limit);

/** Terminate due to a user-caused error (exit(1)). */
[[noreturn]] void fatalExit(const std::string &msg);

/** Terminate due to an internal invariant violation (abort()). */
[[noreturn]] void panicAbort(const std::string &msg);

/** Concatenate a parameter pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Report normal operating status to the user. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Inform)
        detail::emit("info: ", detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious but non-fatal condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit("warn: ", detail::concat(std::forward<Args>(args)...));
}

/**
 * Rate-limited warning for conditions that can fire once per step in a
 * long sweep: the first kWarnLimit occurrences of `key` print normally
 * (the last with a "further warnings suppressed" note), later ones are
 * counted silently with a "suppressed k similar" summary every 1000.
 */
template <typename... Args>
void
warnLimited(const char *key, Args &&...args)
{
    if (logLevel() < LogLevel::Warn)
        return;
    const detail::LimitDecision d = detail::noteLimited(key, kWarnLimit);
    if (d.emitMessage) {
        std::string msg = detail::concat(std::forward<Args>(args)...);
        if (d.announceLimit)
            msg += detail::concat(" [further '", key,
                                  "' warnings suppressed]");
        detail::emit("warn: ", msg);
    } else if (d.emitSummary) {
        detail::emit("warn: ",
                     detail::concat("suppressed ", d.suppressed,
                                    " similar '", key, "' warnings"));
    }
}

/** Occurrences of `key` swallowed by warnLimited so far. */
std::uint64_t suppressedWarnings(const char *key);

/** Forget all warnLimited accounting (tests). */
void resetWarnLimits();

/** Abort the run: the user asked for something impossible. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalExit(detail::concat(std::forward<Args>(args)...));
}

/** Abort the run: the simulator itself is broken. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicAbort(detail::concat(std::forward<Args>(args)...));
}

} // namespace coolcmp

#endif // COOLCMP_UTIL_LOGGING_HH
