/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a simulator bug), fatal() is for user-caused conditions
 * (bad configuration, impossible parameters), warn()/inform() report
 * conditions that do not stop the run.
 *
 * Thread-safe: the level is atomic and the stderr sink is serialized
 * under a mutex, so messages from concurrent runMany workers never
 * interleave. The initial level comes from the COOLCMP_LOG environment
 * variable (silent, warn, inform, debug, or 0-3; default warn).
 */

#ifndef COOLCMP_UTIL_LOGGING_HH
#define COOLCMP_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace coolcmp {

/** Verbosity levels for runtime status messages. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Global log-level accessor. Defaults to Warn. */
LogLevel logLevel();

/** Set the global log level (e.g., Silent in unit tests). */
void setLogLevel(LogLevel level);

/**
 * Set the level only when COOLCMP_LOG did not specify one. Binaries
 * use this for their default verbosity so the user's environment
 * still wins (e.g. COOLCMP_LOG=inform ./bench_table8).
 */
void setDefaultLogLevel(LogLevel level);

namespace detail {

/** Emit a formatted message with a severity prefix to stderr. */
void emit(const char *prefix, const std::string &msg);

/** Terminate due to a user-caused error (exit(1)). */
[[noreturn]] void fatalExit(const std::string &msg);

/** Terminate due to an internal invariant violation (abort()). */
[[noreturn]] void panicAbort(const std::string &msg);

/** Concatenate a parameter pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Report normal operating status to the user. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Inform)
        detail::emit("info: ", detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious but non-fatal condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit("warn: ", detail::concat(std::forward<Args>(args)...));
}

/** Abort the run: the user asked for something impossible. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalExit(detail::concat(std::forward<Args>(args)...));
}

/** Abort the run: the simulator itself is broken. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicAbort(detail::concat(std::forward<Args>(args)...));
}

} // namespace coolcmp

#endif // COOLCMP_UTIL_LOGGING_HH
