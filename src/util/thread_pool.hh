/**
 * @file
 * Fixed-size worker thread pool for the parallel experiment engine.
 *
 * The evaluation sweeps run hundreds of independent (workload, policy)
 * DTM simulations; a small shared pool with a FIFO work queue lets the
 * driver saturate the machine without spawning a thread per run.
 * Submitted jobs return std::future<void>, so exceptions thrown inside
 * a job propagate to whoever waits on the result instead of being
 * swallowed on the worker thread.
 */

#ifndef COOLCMP_UTIL_THREAD_POOL_HH
#define COOLCMP_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace coolcmp {

/** Fixed-size worker pool with a FIFO work queue. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 selects defaultThreadCount().
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Waits for queued work to drain, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Enqueue a job. The returned future completes when the job has
     * run; if the job throws, future.get() rethrows the exception.
     */
    std::future<void> submit(std::function<void()> job);

    /**
     * Worker count from the COOLCMP_THREADS environment variable, or
     * hardware_concurrency when unset/invalid (at least 1).
     */
    static std::size_t defaultThreadCount();

  private:
    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;

    void workerLoop();
};

/**
 * Run fn(i) for i in [0, n) on a temporary pool of `threads` workers
 * (0 = defaultThreadCount). Blocks until every index has completed;
 * rethrows the first (lowest-index) exception after the join, so
 * results indexed by i are filled deterministically regardless of
 * scheduling.
 */
void parallelFor(std::size_t n, std::size_t threads,
                 const std::function<void(std::size_t)> &fn);

} // namespace coolcmp

#endif // COOLCMP_UTIL_THREAD_POOL_HH
