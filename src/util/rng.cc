#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace coolcmp {

namespace {

/** splitmix64 step, used only for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // xoshiro must not be seeded with all zeros; splitmix64 of any seed
    // cannot produce four zero words, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::below(0) is undefined");
    // Rejection-free Lemire-style bounded draw; bias is negligible for
    // the modest n used in simulation but we debias anyway.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
        std::uint64_t threshold = (0 - n) % n;
        while (lo < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * n;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::range with lo > hi");
    return lo + static_cast<std::int64_t>(
        below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    hasSpare_ = true;
    return u * factor;
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

std::uint64_t
Rng::geometric(double p, std::uint64_t cap)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        return cap;
    // Inversion: floor(log(1-U)/log(1-p)).
    const double u = uniform();
    const double draws = std::log1p(-u) / std::log1p(-p);
    if (draws >= static_cast<double>(cap))
        return cap;
    return static_cast<std::uint64_t>(draws);
}

} // namespace coolcmp
