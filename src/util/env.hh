/**
 * @file
 * Environment-variable configuration helpers.
 *
 * Every COOLCMP_* knob (COOLCMP_THREADS, COOLCMP_BATCH,
 * COOLCMP_METRICS_PORT, COOLCMP_SNAPSHOT_MS, ...) shares one parsing
 * contract instead of hand-rolling getenv + strtol at each site:
 *
 *   - unset / empty      -> the caller's fallback
 *   - not a number       -> warn once per variable, then the fallback
 *   - parsed but outside [lo, hi] -> silently clamped into range
 *
 * Header-only so util stays a leaf library.
 */

#ifndef COOLCMP_UTIL_ENV_HH
#define COOLCMP_UTIL_ENV_HH

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <string>

#include "util/logging.hh"

namespace coolcmp {

/**
 * Read a non-negative integer knob from the environment.
 *
 * @param name environment variable name
 * @param fallback value when unset, empty, or unparseable
 * @param lo,hi parsed values are clamped into [lo, hi]
 */
inline std::size_t
envSizeT(const char *name, std::size_t fallback, std::size_t lo = 0,
         std::size_t hi = std::numeric_limits<std::size_t>::max())
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || v < 0) {
        warnLimited(name, "ignoring invalid ", name, " value '", env,
                    "'; using ", fallback);
        return fallback;
    }
    auto parsed = static_cast<std::size_t>(v);
    if (parsed < lo)
        parsed = lo;
    if (parsed > hi)
        parsed = hi;
    return parsed;
}

/**
 * Read a floating-point knob from the environment (same contract as
 * envSizeT: fallback on unset/empty/garbage, clamp into [lo, hi]).
 */
inline double
envDouble(const char *name, double fallback,
          double lo = -std::numeric_limits<double>::infinity(),
          double hi = std::numeric_limits<double>::infinity())
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || *end != '\0' || v != v) {
        warnLimited(name, "ignoring invalid ", name, " value '", env,
                    "'; using ", fallback);
        return fallback;
    }
    if (v < lo)
        return lo;
    if (v > hi)
        return hi;
    return v;
}

/** Read a string knob; the fallback covers unset and empty. */
inline std::string
envString(const char *name, const std::string &fallback = {})
{
    const char *env = std::getenv(name);
    return env && *env ? std::string(env) : fallback;
}

} // namespace coolcmp

#endif // COOLCMP_UTIL_ENV_HH
