#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace coolcmp {

RunningStat::RunningStat()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
}

void
RunningStat::add(double x)
{
    addWeighted(x, 1.0);
}

void
RunningStat::addWeighted(double x, double weight)
{
    if (weight <= 0.0)
        panic("RunningStat weight must be positive");
    ++count_;
    weight_ += weight;
    const double delta = x - mean_;
    mean_ += delta * (weight / weight_);
    m2_ += weight * delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
RunningStat::variance() const
{
    if (count_ < 2 || weight_ <= 0.0)
        return 0.0;
    // Frequency-weight interpretation.
    return m2_ / weight_ * (static_cast<double>(count_) / (count_ - 1));
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::weightedSum() const
{
    return mean_ * weight_;
}

void
RunningStat::clear()
{
    *this = RunningStat();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0)
{
    if (bins == 0)
        fatal("Histogram needs at least one bin");
    if (!(hi > lo))
        fatal("Histogram range must be non-empty");
}

void
Histogram::add(double x)
{
    const double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<long>(std::floor(frac * bins_.size()));
    idx = std::clamp<long>(idx, 0, static_cast<long>(bins_.size()) - 1);
    ++bins_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / bins_.size();
}

double
Histogram::quantile(double p) const
{
    if (total_ == 0)
        return lo_;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(total_);
    double cum = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        const double next = cum + static_cast<double>(bins_[i]);
        if (next >= target) {
            // Interpolate within the bin.
            const double width = (hi_ - lo_) / bins_.size();
            const double inBin = bins_[i] == 0
                ? 0.0 : (target - cum) / static_cast<double>(bins_[i]);
            return binLow(i) + width * inBin;
        }
        cum = next;
    }
    return hi_;
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geometricMean requires positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace coolcmp
