#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace coolcmp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("TextTable needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("TextTable row width ", cells.size(),
              " != header width ", headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::percent(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };

    emitRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 == width.size() ? 0 : 2);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emitRow(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto escape = [](const std::string &s) {
        if (s.find(',') == std::string::npos)
            return s;
        return "\"" + s + "\"";
    };
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << escape(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    };
    emitRow(headers_);
    for (const auto &row : rows_)
        emitRow(row);
}

AsciiChart::AsciiChart(int width)
    : width_(width)
{
    if (width < 1)
        fatal("AsciiChart width must be positive");
}

void
AsciiChart::addBar(const std::string &label, double value)
{
    bars_.emplace_back(label, value);
}

void
AsciiChart::print(std::ostream &os) const
{
    double maxVal = 0.0;
    std::size_t maxLabel = 0;
    for (const auto &[label, value] : bars_) {
        maxVal = std::max(maxVal, value);
        maxLabel = std::max(maxLabel, label.size());
    }
    if (maxVal <= 0.0)
        maxVal = 1.0;
    for (const auto &[label, value] : bars_) {
        const int n = static_cast<int>(
            value / maxVal * static_cast<double>(width_) + 0.5);
        os << std::left << std::setw(static_cast<int>(maxLabel)) << label
           << " |" << std::string(static_cast<std::size_t>(std::max(n, 0)),
                                  '#')
           << " " << TextTable::num(value) << "\n";
    }
}

} // namespace coolcmp
