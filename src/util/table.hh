/**
 * @file
 * Plain-text and CSV table writers for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures;
 * TextTable renders aligned console output and writeCsv dumps the same
 * data for plotting.
 */

#ifndef COOLCMP_UTIL_TABLE_HH
#define COOLCMP_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace coolcmp {

/** A rectangular table of strings with a header row, rendered aligned. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly one cell per column. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format a ratio as a percentage string ("42.3%"). */
    static std::string percent(double fraction, int precision = 1);

    /** Number of data rows. */
    std::size_t numRows() const { return rows_.size(); }

    /** Render to a stream with column alignment and a rule under the
     *  header. */
    void print(std::ostream &os) const;

    /** Render as RFC-4180-ish CSV (no quoting of embedded commas needed
     *  for our content, but commas in cells are escaped). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Render a simple ASCII chart of one or more named series sharing an
 * x-axis, used to "plot" the paper's figures on the console.
 */
class AsciiChart
{
  public:
    /** @param width number of character cells per bar/row. */
    explicit AsciiChart(int width = 60);

    /** Add one bar: a label and a value. Bars scale to the max value. */
    void addBar(const std::string &label, double value);

    /** Render all bars. */
    void print(std::ostream &os) const;

  private:
    int width_;
    std::vector<std::pair<std::string, double>> bars_;
};

} // namespace coolcmp

#endif // COOLCMP_UTIL_TABLE_HH
