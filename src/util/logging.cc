#include "util/logging.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <map>
#include <mutex>

#include "util/env.hh"

namespace coolcmp {

namespace {

/** True when COOLCMP_LOG carried an explicit (recognized) level. */
bool levelWasSetByEnv = false;

/** Parse COOLCMP_LOG (silent/warn/inform/debug or 0-3). */
LogLevel
levelFromEnv(bool &recognized, bool &present)
{
    recognized = true;
    const std::string env = envString("COOLCMP_LOG");
    present = !env.empty();
    if (!present)
        return LogLevel::Warn;
    std::string v(env);
    for (char &c : v)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (v == "silent" || v == "0")
        return LogLevel::Silent;
    if (v == "warn" || v == "1")
        return LogLevel::Warn;
    if (v == "inform" || v == "info" || v == "2")
        return LogLevel::Inform;
    if (v == "debug" || v == "3")
        return LogLevel::Debug;
    recognized = false;
    return LogLevel::Warn;
}

/** Level storage, initialized from the environment on first use (a
 *  magic static, so the read is safe whenever logging first runs). */
std::atomic<LogLevel> &
levelVar()
{
    static std::atomic<LogLevel> level = [] {
        bool recognized = true;
        bool present = false;
        const LogLevel initial = levelFromEnv(recognized, present);
        if (!recognized)
            detail::emit("warn: ",
                         "unrecognized COOLCMP_LOG value; expected "
                         "silent, warn, inform, or debug");
        else
            levelWasSetByEnv = present;
        return std::atomic<LogLevel>{initial};
    }();
    return level;
}

/** Serializes sink writes so concurrent runMany workers (and tracer
 *  diagnostics) never interleave half-lines on stderr. */
std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** warnLimited per-key occurrence counts (magic statics: safe from
 *  any thread, any time). */
std::mutex &
limitMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::map<std::string, std::uint64_t> &
limitCounts()
{
    static std::map<std::string, std::uint64_t> counts;
    return counts;
}

} // namespace

LogLevel
logLevel()
{
    return levelVar().load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    levelVar().store(level, std::memory_order_relaxed);
}

void
setDefaultLogLevel(LogLevel level)
{
    std::atomic<LogLevel> &var = levelVar(); // runs the env init
    if (!levelWasSetByEnv)
        var.store(level, std::memory_order_relaxed);
}

std::uint64_t
suppressedWarnings(const char *key)
{
    std::lock_guard<std::mutex> lock(limitMutex());
    const auto it = limitCounts().find(key);
    if (it == limitCounts().end() || it->second <= kWarnLimit)
        return 0;
    return it->second - kWarnLimit;
}

void
resetWarnLimits()
{
    std::lock_guard<std::mutex> lock(limitMutex());
    limitCounts().clear();
}

namespace detail {

LimitDecision
noteLimited(const std::string &key, std::uint64_t limit)
{
    std::uint64_t count = 0;
    {
        std::lock_guard<std::mutex> lock(limitMutex());
        count = ++limitCounts()[key];
    }
    LimitDecision d;
    if (count <= limit) {
        d.emitMessage = true;
        d.announceLimit = count == limit;
        return d;
    }
    d.suppressed = count - limit;
    d.emitSummary = d.suppressed % 1000 == 0;
    return d;
}

void
emit(const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fputs(prefix, stderr);
    std::fputs(msg.c_str(), stderr);
    std::fputc('\n', stderr);
}

void
fatalExit(const std::string &msg)
{
    emit("fatal: ", msg);
    std::exit(1);
}

void
panicAbort(const std::string &msg)
{
    emit("panic: ", msg);
    std::abort();
}

} // namespace detail

} // namespace coolcmp
