#include "util/logging.hh"

#include <cstdio>

namespace coolcmp {

namespace {

LogLevel globalLevel = LogLevel::Warn;

} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail {

void
emit(const char *prefix, const std::string &msg)
{
    std::fputs(prefix, stderr);
    std::fputs(msg.c_str(), stderr);
    std::fputc('\n', stderr);
}

void
fatalExit(const std::string &msg)
{
    emit("fatal: ", msg);
    std::exit(1);
}

void
panicAbort(const std::string &msg)
{
    emit("panic: ", msg);
    std::abort();
}

} // namespace detail

} // namespace coolcmp
