#include "util/logging.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <mutex>

namespace coolcmp {

namespace {

/** True when COOLCMP_LOG carried an explicit (recognized) level. */
bool levelWasSetByEnv = false;

/** Parse COOLCMP_LOG (silent/warn/inform/debug or 0-3). */
LogLevel
levelFromEnv(bool &recognized)
{
    recognized = true;
    const char *env = std::getenv("COOLCMP_LOG");
    if (!env || !*env)
        return LogLevel::Warn;
    std::string v(env);
    for (char &c : v)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (v == "silent" || v == "0")
        return LogLevel::Silent;
    if (v == "warn" || v == "1")
        return LogLevel::Warn;
    if (v == "inform" || v == "info" || v == "2")
        return LogLevel::Inform;
    if (v == "debug" || v == "3")
        return LogLevel::Debug;
    recognized = false;
    return LogLevel::Warn;
}

/** Level storage, initialized from the environment on first use (a
 *  magic static, so the read is safe whenever logging first runs). */
std::atomic<LogLevel> &
levelVar()
{
    static std::atomic<LogLevel> level = [] {
        bool recognized = true;
        const LogLevel initial = levelFromEnv(recognized);
        if (!recognized)
            detail::emit("warn: ",
                         "unrecognized COOLCMP_LOG value; expected "
                         "silent, warn, inform, or debug");
        else {
            const char *env = std::getenv("COOLCMP_LOG");
            levelWasSetByEnv = env != nullptr && *env != '\0';
        }
        return std::atomic<LogLevel>{initial};
    }();
    return level;
}

/** Serializes sink writes so concurrent runMany workers (and tracer
 *  diagnostics) never interleave half-lines on stderr. */
std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

} // namespace

LogLevel
logLevel()
{
    return levelVar().load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    levelVar().store(level, std::memory_order_relaxed);
}

void
setDefaultLogLevel(LogLevel level)
{
    std::atomic<LogLevel> &var = levelVar(); // runs the env init
    if (!levelWasSetByEnv)
        var.store(level, std::memory_order_relaxed);
}

namespace detail {

void
emit(const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fputs(prefix, stderr);
    std::fputs(msg.c_str(), stderr);
    std::fputc('\n', stderr);
}

void
fatalExit(const std::string &msg)
{
    emit("fatal: ", msg);
    std::exit(1);
}

void
panicAbort(const std::string &msg)
{
    emit("panic: ", msg);
    std::abort();
}

} // namespace detail

} // namespace coolcmp
