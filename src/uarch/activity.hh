/**
 * @file
 * Per-interval activity counts gathered by the core model.
 *
 * These are exactly the "counts of various architectural events" that
 * PowerTimer scales its power models by (Section 3.1) and include the
 * performance-counter values the counter-based migration policy reads
 * (Section 6.1): cycle counts, integer and floating-point register
 * file accesses, and instructions executed.
 */

#ifndef COOLCMP_UARCH_ACTIVITY_HH
#define COOLCMP_UARCH_ACTIVITY_HH

#include <cstdint>

#include "thermal/unit.hh"

namespace coolcmp {

/** Event counts accumulated over a simulation interval. */
struct ActivityCounts
{
    /** Accesses per unit kind over the interval. */
    PerUnit<double> accesses;

    /** Core cycles in the interval. */
    std::uint64_t cycles = 0;

    /** Committed instructions. */
    std::uint64_t instructions = 0;

    /** Committed loads+stores (for cache power attribution). */
    std::uint64_t memOps = 0;

    /** Branch mispredictions. */
    std::uint64_t branchMispredicts = 0;

    /** L1D / L1I / L2 misses. */
    std::uint64_t l1dMisses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t l2Misses = 0;

    /** Committed instructions per cycle; 0 for an empty interval. */
    double ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                static_cast<double>(cycles);
    }

    /** Accesses per cycle for one unit kind. */
    double accessesPerCycle(UnitKind kind) const
    {
        return cycles == 0 ? 0.0
                           : accesses[kind] /
                static_cast<double>(cycles);
    }

    /** Accumulate another interval into this one. */
    void merge(const ActivityCounts &other);

    /** Reset all counts. */
    void clear();
};

} // namespace coolcmp

#endif // COOLCMP_UARCH_ACTIVITY_HH
