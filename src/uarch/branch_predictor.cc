#include "uarch/branch_predictor.hh"

#include "util/logging.hh"

namespace coolcmp {

namespace {

/** 2-bit saturating counter helpers; >= 2 means predict taken. */
std::uint8_t
bump(std::uint8_t counter, bool taken)
{
    if (taken)
        return counter < 3 ? counter + 1 : 3;
    return counter > 0 ? counter - 1 : 0;
}

bool
powerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

} // namespace

bool
BranchPredictor::lookup(std::uint64_t pc, bool taken)
{
    const bool prediction = predict(pc);
    update(pc, taken);
    ++lookups_;
    const bool correct = prediction == taken;
    if (!correct)
        ++mispredicts_;
    return correct;
}

double
BranchPredictor::mispredictRate() const
{
    return lookups_ == 0 ? 0.0
                         : static_cast<double>(mispredicts_) /
            static_cast<double>(lookups_);
}

void
BranchPredictor::clearStats()
{
    lookups_ = 0;
    mispredicts_ = 0;
}

BimodalPredictor::BimodalPredictor(std::size_t entries)
    : table_(entries, 2), mask_(entries - 1)
{
    if (!powerOfTwo(entries))
        fatal("predictor table size must be a power of two");
}

bool
BimodalPredictor::predict(std::uint64_t pc) const
{
    return table_[pc & mask_] >= 2;
}

void
BimodalPredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &entry = table_[pc & mask_];
    entry = bump(entry, taken);
}

GsharePredictor::GsharePredictor(std::size_t entries,
                                 unsigned historyBits)
    : table_(entries, 2), mask_(entries - 1), historyBits_(historyBits)
{
    if (!powerOfTwo(entries))
        fatal("predictor table size must be a power of two");
}

std::size_t
GsharePredictor::index(std::uint64_t pc) const
{
    return (pc ^ history_) & mask_;
}

bool
GsharePredictor::predict(std::uint64_t pc) const
{
    return table_[index(pc)] >= 2;
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &entry = table_[index(pc)];
    entry = bump(entry, taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) &
        ((1ULL << historyBits_) - 1);
}

TournamentPredictor::TournamentPredictor(std::size_t entries)
    : bimodal_(entries), gshare_(entries), selector_(entries, 2),
      mask_(entries - 1)
{
    if (!powerOfTwo(entries))
        fatal("predictor table size must be a power of two");
}

bool
TournamentPredictor::predict(std::uint64_t pc) const
{
    const bool useGshare = selector_[pc & mask_] >= 2;
    return useGshare ? gshare_.predict(pc) : bimodal_.predict(pc);
}

void
TournamentPredictor::update(std::uint64_t pc, bool taken)
{
    const bool bimodalRight = bimodal_.predict(pc) == taken;
    const bool gshareRight = gshare_.predict(pc) == taken;
    std::uint8_t &sel = selector_[pc & mask_];
    if (gshareRight != bimodalRight)
        sel = bump(sel, gshareRight);
    bimodal_.update(pc, taken);
    gshare_.update(pc, taken);
}

} // namespace coolcmp
