/**
 * @file
 * Branch predictors: bimodal, gshare, and the tournament combination
 * of Table 3 (16K-entry bimodal + 16K-entry gshare + 16K-entry
 * selector).
 */

#ifndef COOLCMP_UARCH_BRANCH_PREDICTOR_HH
#define COOLCMP_UARCH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

namespace coolcmp {

/** Common statistics-bearing predictor interface. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the branch at pc; does not update state. */
    virtual bool predict(std::uint64_t pc) const = 0;

    /** Commit the actual outcome, updating tables and history. */
    virtual void update(std::uint64_t pc, bool taken) = 0;

    /** Predict-and-update convenience; returns prediction correctness. */
    bool lookup(std::uint64_t pc, bool taken);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Misprediction ratio; 0 before any lookup. */
    double mispredictRate() const;

    void clearStats();

  private:
    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

/** Table of 2-bit saturating counters indexed by pc. */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(std::size_t entries = 16384);

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;

  private:
    std::vector<std::uint8_t> table_;
    std::size_t mask_;
};

/** Global-history predictor: pc XOR history indexes 2-bit counters. */
class GsharePredictor : public BranchPredictor
{
  public:
    explicit GsharePredictor(std::size_t entries = 16384,
                             unsigned historyBits = 12);

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;

  private:
    std::vector<std::uint8_t> table_;
    std::size_t mask_;
    unsigned historyBits_;
    std::uint64_t history_ = 0;

    std::size_t index(std::uint64_t pc) const;
};

/**
 * Tournament predictor: a selector table of 2-bit counters chooses
 * between the bimodal and gshare components per static branch.
 */
class TournamentPredictor : public BranchPredictor
{
  public:
    explicit TournamentPredictor(std::size_t entries = 16384);

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;

  private:
    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    std::vector<std::uint8_t> selector_;
    std::size_t mask_;
};

} // namespace coolcmp

#endif // COOLCMP_UARCH_BRANCH_PREDICTOR_HH
