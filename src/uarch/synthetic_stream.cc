#include "uarch/synthetic_stream.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace coolcmp {

namespace {

// Data regions sized against the Table 3 hierarchy: the hot set fits
// the 32 KB L1D, the warm set fits a one-quarter share (1 MB) of the
// 4 MB shared L2 (the paper capacity-limits single-threaded runs the
// same way), and the cold region always misses.
constexpr std::uint64_t hotBase = 0x10000000ULL;
constexpr std::uint64_t hotSize = 16 * 1024;
constexpr std::uint64_t warmBase = 0x20000000ULL;
constexpr std::uint64_t warmSize = 768 * 1024;
constexpr std::uint64_t coldBase = 0x40000000ULL;
constexpr std::uint64_t coldSize = 256ULL * 1024 * 1024;

constexpr std::uint64_t codeBase = 0x00400000ULL;

} // namespace

SyntheticStream::SyntheticStream(const StreamParams &params,
                                 std::uint64_t seed)
    : params_(params), rng_(seed), hotCursor_(hotBase),
      warmCursor_(warmBase), coldCursor_(coldBase), fetchAddr_(codeBase)
{
    normalizeMix();
    rebuildDepDistTable();
    rebuildBranches(seed);
}

void
SyntheticStream::setParams(const StreamParams &params)
{
    // Branch pool is preserved across phase changes (same program, new
    // phase), unless the pool size itself changed.
    const int oldBranches = params_.staticBranches;
    params_ = params;
    normalizeMix();
    rebuildDepDistTable();
    if (params_.staticBranches != oldBranches)
        rebuildBranches(rng_());
}

void
SyntheticStream::normalizeMix()
{
    double total = 0.0;
    for (double m : params_.mix) {
        if (m < 0.0)
            fatal("instruction mix fractions must be non-negative");
        total += m;
    }
    if (total <= 0.0)
        fatal("instruction mix must have positive mass");
    double cum = 0.0;
    for (std::size_t i = 0; i < numOpClasses; ++i) {
        cum += params_.mix[i] / total;
        cumMix_[i] = cum;
    }
    cumMix_[numOpClasses - 1] = 1.0;
}

void
SyntheticStream::rebuildDepDistTable()
{
    // Quantized inverse CDF of 1 + Geometric(1/meanDepDist), capped at
    // half the sequence ring so producers are always resolvable.
    const double mean = std::max(params_.meanDepDist, 1.0);
    const double p = 1.0 / mean;
    const double logq = std::log1p(-std::min(p, 1.0 - 1e-12));
    for (std::size_t i = 0; i < depDistTable_.size(); ++i) {
        const double u =
            (static_cast<double>(i) + 0.5) / depDistTable_.size();
        const double draws = std::log1p(-u) / logq;
        depDistTable_[i] = static_cast<std::uint32_t>(
            1 + std::min(draws, 511.0));
    }
}

void
SyntheticStream::rebuildBranches(std::uint64_t seed)
{
    Rng rng(seed ^ 0xb5297a4d3f2c1e0bULL);
    const auto n = static_cast<std::size_t>(
        std::max(params_.staticBranches, 1));
    branchBias_.resize(n);
    branchPc_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t footprint =
            std::max<std::uint64_t>(params_.codeFootprint, 64);
        branchPc_[i] = codeBase + rng.below(footprint) / 4 * 4;
        if (rng.chance(params_.biasedBranchFrac)) {
            branchBias_[i] =
                rng.chance(0.6) ? rng.uniform(0.94, 1.0)
                                : rng.uniform(0.0, 0.06);
        } else {
            branchBias_[i] = rng.uniform(0.25, 0.75);
        }
    }
}

std::uint64_t
SyntheticStream::dataAddress()
{
    const double region = rng_.uniform();
    std::uint64_t *cursor;
    std::uint64_t base, size;
    if (region < params_.l1Frac) {
        cursor = &hotCursor_;
        base = hotBase;
        size = hotSize;
    } else if (region < params_.l2Frac) {
        cursor = &warmCursor_;
        base = warmBase;
        size = warmSize;
    } else {
        cursor = &coldCursor_;
        base = coldBase;
        size = coldSize;
    }
    if (rng_.chance(params_.strideProb)) {
        *cursor += 8;
        if (*cursor >= base + size)
            *cursor = base;
    } else {
        *cursor = base + rng_.below(size) / 8 * 8;
    }
    return *cursor;
}

MicroOp
SyntheticStream::next()
{
    MicroOp op;
    const double draw = rng_.uniform();
    std::size_t cls = 0;
    while (cls + 1 < numOpClasses && draw >= cumMix_[cls])
        ++cls;
    op.cls = static_cast<OpClass>(cls);

    // Register dependencies: geometric distances with the given mean,
    // drawn through the quantized inverse-CDF table.
    op.srcDist[0] = depDistTable_[rng_() >> 56];
    op.srcDist[1] = rng_.chance(params_.secondSrcProb)
        ? depDistTable_[rng_() >> 56] : 0;

    if (isMemory(op.cls)) {
        op.addr = dataAddress();
        if (op.cls == OpClass::Load)
            op.fpDest = rng_.chance(params_.fpLoadFrac);
    } else if (op.cls == OpClass::Branch) {
        const std::size_t which = rng_.below(branchBias_.size());
        op.pc = branchPc_[which];
        op.taken = rng_.chance(branchBias_[which]);
    }

    // Instruction-side footprint: mostly sequential fetch with
    // occasional jumps to fresh code (models large-footprint phases).
    const std::uint64_t footprint =
        std::max<std::uint64_t>(params_.codeFootprint, 64);
    fetchAddr_ += 4;
    if (rng_.chance(params_.icacheChurn))
        fetchAddr_ = codeBase + rng_.below(footprint) / 4 * 4;
    if (fetchAddr_ >= codeBase + footprint)
        fetchAddr_ = codeBase;

    ++generated_;
    return op;
}

} // namespace coolcmp
