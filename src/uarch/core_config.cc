#include "uarch/core_config.hh"

namespace coolcmp {

CoreConfig
CoreConfig::table3()
{
    return CoreConfig{};
}

CoreConfig
CoreConfig::mobile()
{
    CoreConfig cfg;
    cfg.fetchWidth = 4;
    cfg.dispatchWidth = 3;
    cfg.commitWidth = 3;
    cfg.robSize = 80;
    cfg.intQueueSize = 24;
    cfg.fpQueueSize = 8;
    cfg.numFxu = 2;
    cfg.numFpu = 1;
    cfg.numLsu = 1;
    cfg.l1i = CacheConfig{32 * 1024, 4, 64, 1};
    cfg.l1d = CacheConfig{32 * 1024, 4, 64, 1};
    cfg.l2 = CacheConfig{1024 * 1024, 8, 64, 10};
    cfg.memoryLatency = 120;
    cfg.l2CapacityShare = 1.0; // single core owns the whole L2
    return cfg;
}

} // namespace coolcmp
