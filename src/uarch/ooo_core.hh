/**
 * @file
 * Cycle-level out-of-order core model (the Turandot stand-in).
 *
 * Models the Table 3 machine: decoupled fetch with a tournament branch
 * predictor, rename with finite physical register files, split
 * memory/integer and floating-point issue queues, a reorder buffer,
 * per-class functional units (2 FXU, 2 FPU, 2 LSU, 1 BXU), and a
 * two-level cache hierarchy. Execution is scoreboard-style: micro-ops
 * issue when their register sources are complete and a unit is free,
 * and commit in order. The model's product is the per-interval
 * ActivityCounts stream that feeds the power model.
 */

#ifndef COOLCMP_UARCH_OOO_CORE_HH
#define COOLCMP_UARCH_OOO_CORE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "uarch/activity.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/cache.hh"
#include "uarch/core_config.hh"
#include "uarch/synthetic_stream.hh"

namespace coolcmp {

/** One simulated out-of-order core driven by a synthetic stream. */
class OooCore
{
  public:
    /**
     * @param config machine parameters
     * @param params initial stream statistics
     * @param seed deterministic seed for the instruction stream
     */
    OooCore(const CoreConfig &config, const StreamParams &params,
            std::uint64_t seed);

    /** Change the stream statistics (phase boundary). */
    void setStreamParams(const StreamParams &params);

    /**
     * Simulate the given number of cycles, accumulating event counts.
     * May be called repeatedly; machine state persists across calls.
     */
    void run(std::uint64_t cycles, ActivityCounts &counts);

    /** Total committed instructions since construction. */
    std::uint64_t totalInstructions() const { return totalCommitted_; }

    /** Total cycles simulated since construction. */
    std::uint64_t totalCycles() const { return cycle_; }

    /** Lifetime IPC. */
    double ipc() const;

    const Cache &l1d() const { return l1d_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l2() const { return l2_; }
    const BranchPredictor &predictor() const { return predictor_; }

  private:
    struct RobEntry
    {
        MicroOp op;
        std::uint64_t seq = 0;
        std::int64_t completeAt = -1; ///< -1 while waiting to issue
        std::int64_t retryAt = 0;     ///< skip issue checks before this
        bool issued = false;
        bool mispredicted = false;
    };

    CoreConfig config_;
    SyntheticStream stream_;

    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    TournamentPredictor predictor_;

    // Reorder buffer as a ring.
    std::vector<RobEntry> rob_;
    std::size_t robHead_ = 0;
    std::size_t robCount_ = 0;

    // Completion times by sequence number (ring; ready once <= cycle).
    std::vector<std::int64_t> completeBySeq_;
    std::uint64_t seqMask_;

    std::deque<MicroOp> fetchBuffer_;

    std::uint64_t cycle_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t totalCommitted_ = 0;

    int intRegsFree_;
    int fpRegsFree_;
    int intQFree_;
    int fpQFree_;

    std::int64_t fetchStalledUntil_ = 0; ///< icache miss / redirect
    bool awaitingRedirect_ = false; ///< a fetched mispredict is in flight
    std::int64_t fpDivFreeAt_ = 0;

    static constexpr int issueScanLimit_ = 24;

    void doCommit(ActivityCounts &counts);
    void doIssue(ActivityCounts &counts);
    void doDispatch(ActivityCounts &counts);
    void doFetch(ActivityCounts &counts);

    bool needsIntQueue(OpClass cls) const;

    /**
     * Earliest cycle at which the entry's register sources are all
     * complete: <= now means ready; INT64_MAX means a producer has not
     * even issued yet.
     */
    std::int64_t sourcesReadyAt(const RobEntry &entry) const;
    int memoryLatency(std::uint64_t addr, ActivityCounts &counts);
};

} // namespace coolcmp

#endif // COOLCMP_UARCH_OOO_CORE_HH
