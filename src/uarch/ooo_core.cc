#include "uarch/ooo_core.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace coolcmp {

namespace {

/** Sequence ring large enough that a producer entry can never be
 *  overwritten while a consumer still inside the window needs it. */
constexpr std::uint64_t seqRingSize = 4096;

CacheConfig
scaledL2(const CoreConfig &config)
{
    CacheConfig l2 = config.l2;
    auto scaled = static_cast<std::uint64_t>(
        static_cast<double>(l2.sizeBytes) * config.l2CapacityShare);
    // Keep a power-of-two set count by rounding to the nearest power
    // of two at or below the scaled size.
    std::uint64_t size = l2.blockBytes * l2.associativity;
    while (size * 2 <= scaled)
        size *= 2;
    l2.sizeBytes = size;
    return l2;
}

} // namespace

OooCore::OooCore(const CoreConfig &config, const StreamParams &params,
                 std::uint64_t seed)
    : config_(config), stream_(params, seed), l1i_(config.l1i),
      l1d_(config.l1d), l2_(scaledL2(config)),
      predictor_(config.bpredEntries),
      rob_(static_cast<std::size_t>(config.robSize)),
      completeBySeq_(seqRingSize, -1), seqMask_(seqRingSize - 1),
      intRegsFree_(config.physGpr - config.archGpr),
      fpRegsFree_(config.physFpr - config.archFpr),
      intQFree_(config.intQueueSize), fpQFree_(config.fpQueueSize)
{
    if (config.robSize <= 0 || config.fetchWidth <= 0 ||
        config.dispatchWidth <= 0 || config.commitWidth <= 0)
        fatal("core widths and ROB size must be positive");
    if (intRegsFree_ <= 0 || fpRegsFree_ <= 0)
        fatal("physical register file smaller than architected state");
}

void
OooCore::setStreamParams(const StreamParams &params)
{
    stream_.setParams(params);
}

double
OooCore::ipc() const
{
    return cycle_ == 0 ? 0.0
                       : static_cast<double>(totalCommitted_) /
            static_cast<double>(cycle_);
}

bool
OooCore::needsIntQueue(OpClass cls) const
{
    return !isFloat(cls);
}

std::int64_t
OooCore::sourcesReadyAt(const RobEntry &entry) const
{
    std::int64_t readyAt = 0;
    for (int s = 0; s < 2; ++s) {
        const std::uint32_t dist = entry.op.srcDist[s];
        if (dist == 0)
            continue;
        if (dist > entry.seq)
            continue; // source predates the simulation
        const std::uint64_t producer = entry.seq - dist;
        const std::int64_t ready = completeBySeq_[producer & seqMask_];
        if (ready < 0)
            return std::numeric_limits<std::int64_t>::max();
        readyAt = std::max(readyAt, ready);
    }
    return readyAt;
}

int
OooCore::memoryLatency(std::uint64_t addr, ActivityCounts &counts)
{
    counts.accesses[UnitKind::DCache] += 1.0;
    if (l1d_.access(addr))
        return config_.l1d.latency;
    counts.l1dMisses += 1;
    counts.accesses[UnitKind::L2] += 1.0;
    if (l2_.access(addr))
        return config_.l1d.latency + config_.l2.latency;
    counts.l2Misses += 1;
    return config_.l1d.latency + config_.l2.latency +
        config_.memoryLatency;
}

void
OooCore::doCommit(ActivityCounts &counts)
{
    const auto now = static_cast<std::int64_t>(cycle_);
    for (int n = 0; n < config_.commitWidth && robCount_ > 0; ++n) {
        RobEntry &head = rob_[robHead_];
        if (!head.issued || head.completeAt > now)
            break;
        const OpClass cls = head.op.cls;
        // Free the rename register claimed at dispatch.
        if (isFloat(cls) || (cls == OpClass::Load && head.op.fpDest)) {
            ++fpRegsFree_;
        } else if (cls != OpClass::Store && cls != OpClass::Branch) {
            ++intRegsFree_;
        }
        if (isMemory(cls))
            counts.memOps += 1;
        counts.accesses[UnitKind::Other] += 1.0;
        counts.instructions += 1;
        ++totalCommitted_;
        robHead_ = (robHead_ + 1) % rob_.size();
        --robCount_;
    }
}

void
OooCore::doIssue(ActivityCounts &counts)
{
    int fxuLeft = config_.numFxu;
    int fpuLeft = config_.numFpu;
    int lsuLeft = config_.numLsu;
    int bxuLeft = config_.numBxu;
    const auto now = static_cast<std::int64_t>(cycle_);

    std::size_t idx = robHead_;
    const std::size_t robSize = rob_.size();
    const std::size_t limit =
        std::min<std::size_t>(robCount_, issueScanLimit_);
    for (std::size_t n = 0; n < limit; ++n) {
        RobEntry &entry = rob_[idx];
        if (++idx == robSize)
            idx = 0;
        if (entry.issued || now < entry.retryAt)
            continue;
        if (fxuLeft + fpuLeft + lsuLeft + bxuLeft == 0)
            break;
        const std::int64_t readyAt = sourcesReadyAt(entry);
        if (readyAt > now) {
            // Memoize: no point re-checking before the producer
            // completes (unissued producers re-check next cycle).
            entry.retryAt =
                readyAt == std::numeric_limits<std::int64_t>::max()
                    ? now + 1 : readyAt;
            continue;
        }
        const OpClass cls = entry.op.cls;
        int latency = baseLatency(cls);
        switch (cls) {
          case OpClass::IntAlu:
          case OpClass::IntMul:
            if (fxuLeft == 0)
                continue;
            --fxuLeft;
            counts.accesses[UnitKind::FXU] += 1.0;
            counts.accesses[UnitKind::IntRF] += 3.0; // 2 reads, 1 write
            counts.accesses[UnitKind::IntQ] += 1.0;
            ++intQFree_;
            break;
          case OpClass::FpAdd:
          case OpClass::FpMul:
            if (fpuLeft == 0)
                continue;
            --fpuLeft;
            counts.accesses[UnitKind::FPU] += 1.0;
            counts.accesses[UnitKind::FpRF] += 3.0;
            counts.accesses[UnitKind::FpQ] += 1.0;
            ++fpQFree_;
            break;
          case OpClass::FpDiv:
            if (fpuLeft == 0 || fpDivFreeAt_ > now)
                continue;
            --fpuLeft;
            fpDivFreeAt_ = now + latency; // unpipelined divider
            counts.accesses[UnitKind::FPU] += 1.0;
            counts.accesses[UnitKind::FpRF] += 3.0;
            counts.accesses[UnitKind::FpQ] += 1.0;
            ++fpQFree_;
            break;
          case OpClass::Load:
            if (lsuLeft == 0)
                continue;
            --lsuLeft;
            latency = memoryLatency(entry.op.addr, counts);
            counts.accesses[UnitKind::LSU] += 1.0;
            counts.accesses[UnitKind::IntRF] += 1.0; // address
            if (entry.op.fpDest)
                counts.accesses[UnitKind::FpRF] += 1.0;
            else
                counts.accesses[UnitKind::IntRF] += 1.0;
            counts.accesses[UnitKind::IntQ] += 1.0;
            ++intQFree_;
            break;
          case OpClass::Store:
            if (lsuLeft == 0)
                continue;
            --lsuLeft;
            (void)memoryLatency(entry.op.addr, counts);
            latency = 1; // retires into the store buffer
            counts.accesses[UnitKind::LSU] += 1.0;
            counts.accesses[UnitKind::IntRF] += 2.0;
            counts.accesses[UnitKind::IntQ] += 1.0;
            ++intQFree_;
            break;
          case OpClass::Branch:
            if (bxuLeft == 0)
                continue;
            --bxuLeft;
            counts.accesses[UnitKind::BXU] += 1.0;
            counts.accesses[UnitKind::IntRF] += 1.0;
            counts.accesses[UnitKind::IntQ] += 1.0;
            ++intQFree_;
            break;
          default:
            panic("unknown op class at issue");
        }
        entry.issued = true;
        entry.completeAt = now + latency;
        completeBySeq_[entry.seq & seqMask_] = entry.completeAt;
        if (entry.mispredicted) {
            // Fetch resumes once the branch resolves plus refill time.
            fetchStalledUntil_ = std::max<std::int64_t>(
                fetchStalledUntil_,
                entry.completeAt + config_.frontendRefill);
            awaitingRedirect_ = false;
        }
    }
}

void
OooCore::doDispatch(ActivityCounts &counts)
{
    for (int n = 0; n < config_.dispatchWidth; ++n) {
        if (fetchBuffer_.empty() || robCount_ == rob_.size())
            break;
        const MicroOp &op = fetchBuffer_.front();
        const bool fp = isFloat(op.cls);
        const bool fpDest = fp || (op.cls == OpClass::Load && op.fpDest);
        const bool intDest = !fpDest && op.cls != OpClass::Store &&
            op.cls != OpClass::Branch;

        if (fpDest && fpRegsFree_ == 0)
            break;
        if (intDest && intRegsFree_ == 0)
            break;
        if (needsIntQueue(op.cls) && intQFree_ == 0)
            break;
        if (!needsIntQueue(op.cls) && fpQFree_ == 0)
            break;

        if (fpDest)
            --fpRegsFree_;
        if (intDest)
            --intRegsFree_;
        if (needsIntQueue(op.cls)) {
            --intQFree_;
            counts.accesses[UnitKind::IntQ] += 1.0;
        } else {
            --fpQFree_;
            counts.accesses[UnitKind::FpQ] += 1.0;
        }
        counts.accesses[UnitKind::Rename] += 1.0;

        std::size_t tail = (robHead_ + robCount_) % rob_.size();
        RobEntry &entry = rob_[tail];
        entry.op = op;
        entry.seq = nextSeq_++;
        entry.issued = false;
        entry.completeAt = -1;
        entry.retryAt = 0;
        entry.mispredicted =
            op.cls == OpClass::Branch && op.fpDest; // flag reused below
        completeBySeq_[entry.seq & seqMask_] = -1;
        ++robCount_;
        fetchBuffer_.pop_front();
    }
}

void
OooCore::doFetch(ActivityCounts &counts)
{
    const auto now = static_cast<std::int64_t>(cycle_);
    if (now < fetchStalledUntil_ || awaitingRedirect_)
        return;
    if (static_cast<int>(fetchBuffer_.size()) >=
        config_.fetchBufferSize)
        return;

    counts.accesses[UnitKind::ICache] += 1.0;
    if (!l1i_.access(stream_.fetchAddr())) {
        counts.l1iMisses += 1;
        counts.accesses[UnitKind::L2] += 1.0;
        int penalty = config_.l2.latency;
        if (!l2_.access(stream_.fetchAddr()))
            penalty += config_.memoryLatency;
        fetchStalledUntil_ = now + penalty;
        return;
    }

    for (int n = 0; n < config_.fetchWidth; ++n) {
        if (static_cast<int>(fetchBuffer_.size()) >=
            config_.fetchBufferSize)
            break;
        MicroOp op = stream_.next();
        if (op.cls == OpClass::Branch) {
            counts.accesses[UnitKind::Bpred] += 2.0; // lookup + update
            const bool correct = predictor_.lookup(op.pc, op.taken);
            if (!correct) {
                counts.branchMispredicts += 1;
                // Reuse fpDest as the "mispredicted" mark for branches
                // (branches never load FP registers).
                op.fpDest = true;
                fetchBuffer_.push_back(op);
                awaitingRedirect_ = true;
                return;
            }
        }
        fetchBuffer_.push_back(op);
    }
}

void
OooCore::run(std::uint64_t cycles, ActivityCounts &counts)
{
    const std::uint64_t end = cycle_ + cycles;
    while (cycle_ < end) {
        doCommit(counts);
        doIssue(counts);
        doDispatch(counts);
        doFetch(counts);
        ++cycle_;
        counts.cycles += 1;
    }
}

} // namespace coolcmp
