#include "uarch/isa.hh"

#include <array>

#include "util/logging.hh"

namespace coolcmp {

const std::string &
opClassName(OpClass cls)
{
    static const std::array<std::string, numOpClasses> names = {
        "IntAlu", "IntMul", "FpAdd", "FpMul", "FpDiv", "Load", "Store",
        "Branch",
    };
    const auto idx = static_cast<std::size_t>(cls);
    if (idx >= names.size())
        panic("bad OpClass ", idx);
    return names[idx];
}

} // namespace coolcmp
