/**
 * @file
 * Out-of-order core configuration following Table 3 of the paper.
 */

#ifndef COOLCMP_UARCH_CORE_CONFIG_HH
#define COOLCMP_UARCH_CORE_CONFIG_HH

#include "uarch/cache.hh"

namespace coolcmp {

/** Core and memory-hierarchy parameters (Table 3). */
struct CoreConfig
{
    // Pipeline widths (Turandot/POWER4-class; the paper does not list
    // widths explicitly, so these follow its cited configuration [10]).
    int fetchWidth = 8;
    int dispatchWidth = 5;
    int commitWidth = 5;

    // Window structures.
    int robSize = 156;
    int intQueueSize = 40; ///< Mem/Int queue (2x20)
    int fpQueueSize = 10;  ///< FP queue (2x5)
    int fetchBufferSize = 24;

    // Functional units: 2 FXU, 2 FPU, 2 LSU, 1 BXU.
    int numFxu = 2;
    int numFpu = 2;
    int numLsu = 2;
    int numBxu = 1;

    // Physical registers: 120 GPR, 108 FPR (SPRs folded into Other).
    int physGpr = 120;
    int physFpr = 108;
    // Architected registers that are always live.
    int archGpr = 36;
    int archFpr = 34;

    // Branch handling.
    std::size_t bpredEntries = 16384;
    int frontendRefill = 5; ///< cycles to refill fetch after redirect

    // Memory hierarchy (latencies in cycles).
    CacheConfig l1i{64 * 1024, 2, 128, 1};
    CacheConfig l1d{32 * 1024, 2, 128, 1};
    CacheConfig l2{4 * 1024 * 1024, 4, 128, 9};
    int memoryLatency = 100;

    /**
     * Fraction of the shared L2 a single-threaded trace run may use.
     * The paper capacity-limits single-threaded Turandot runs to one
     * quarter of the L2 while charging full-size power (Section 3.3).
     */
    double l2CapacityShare = 0.25;

    /** The 4-core CMP configuration from Table 3. */
    static CoreConfig table3();

    /** Single-core mobile configuration for the Table 1 experiment
     *  (Banias-like: 1 MB L2, narrower core). */
    static CoreConfig mobile();
};

} // namespace coolcmp

#endif // COOLCMP_UARCH_CORE_CONFIG_HH
