#include "uarch/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace coolcmp {

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    if (config_.blockBytes == 0 ||
        (config_.blockBytes & (config_.blockBytes - 1)) != 0)
        fatal("cache block size must be a power of two");
    if (config_.associativity == 0)
        fatal("cache associativity must be positive");
    const std::uint64_t sets = config_.numSets();
    if (sets == 0 || (sets & (sets - 1)) != 0)
        fatal("cache set count must be a positive power of two");
    ways_.resize(sets * config_.associativity);
    setMask_ = sets - 1;
    blockShift_ =
        static_cast<unsigned>(std::countr_zero(config_.blockBytes));
}

std::uint64_t
Cache::setIndex(std::uint64_t addr) const
{
    return (addr >> blockShift_) & setMask_;
}

std::uint64_t
Cache::tagOf(std::uint64_t addr) const
{
    return addr >> blockShift_;
}

bool
Cache::access(std::uint64_t addr)
{
    ++clock_;
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    Way *base = &ways_[set * config_.associativity];

    Way *victim = base;
    for (unsigned w = 0; w < config_.associativity; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = clock_;
            ++hits_;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }
    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = clock_;
    return false;
}

bool
Cache::contains(std::uint64_t addr) const
{
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    const Way *base = &ways_[set * config_.associativity];
    for (unsigned w = 0; w < config_.associativity; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (Way &way : ways_)
        way.valid = false;
}

double
Cache::hitRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
            static_cast<double>(total);
}

void
Cache::clearStats()
{
    hits_ = 0;
    misses_ = 0;
}

} // namespace coolcmp
