/**
 * @file
 * Set-associative cache model with true-LRU replacement.
 *
 * Tag-only: the thermal study needs hit/miss timing and access counts,
 * not data. Configurations follow Table 3 of the paper (L1D 32 KB
 * 2-way, L1I 64 KB 2-way, shared L2 4 MB 4-way, 128 B blocks).
 */

#ifndef COOLCMP_UARCH_CACHE_HH
#define COOLCMP_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

namespace coolcmp {

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned associativity = 2;
    unsigned blockBytes = 128;
    int latency = 1; ///< access latency in cycles on a hit

    /** Number of sets implied by the geometry. */
    std::uint64_t numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(blockBytes) *
                            associativity);
    }
};

/** Tag-only set-associative cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Look up an address, allocating on miss.
     * @return true on hit.
     */
    bool access(std::uint64_t addr);

    /** Probe without allocating or updating LRU. */
    bool contains(std::uint64_t addr) const;

    /** Invalidate everything. */
    void flush();

    const CacheConfig &config() const { return config_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t accesses() const { return hits_ + misses_; }

    /** Hit ratio, 0 when no accesses yet. */
    double hitRate() const;

    /** Zero the statistics (contents are retained). */
    void clearStats();

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    CacheConfig config_;
    std::vector<Way> ways_; ///< numSets * associativity, set-major
    std::uint64_t setMask_;
    unsigned blockShift_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;

    std::uint64_t setIndex(std::uint64_t addr) const;
    std::uint64_t tagOf(std::uint64_t addr) const;
};

} // namespace coolcmp

#endif // COOLCMP_UARCH_CACHE_HH
