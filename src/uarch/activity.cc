#include "uarch/activity.hh"

namespace coolcmp {

void
ActivityCounts::merge(const ActivityCounts &other)
{
    for (UnitKind kind : coreUnitKinds())
        accesses[kind] += other.accesses[kind];
    accesses[UnitKind::L2] += other.accesses[UnitKind::L2];
    cycles += other.cycles;
    instructions += other.instructions;
    memOps += other.memOps;
    branchMispredicts += other.branchMispredicts;
    l1dMisses += other.l1dMisses;
    l1iMisses += other.l1iMisses;
    l2Misses += other.l2Misses;
}

void
ActivityCounts::clear()
{
    *this = ActivityCounts();
}

} // namespace coolcmp
