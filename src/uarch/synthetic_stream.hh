/**
 * @file
 * Statistically-shaped synthetic instruction streams.
 *
 * The paper drives its power-trace generation from SimPoint-selected
 * 500M-instruction regions of SPEC CPU2000 binaries. Those binaries
 * are not available here, so each benchmark is replaced by a stream
 * generator whose statistics (instruction mix, dependency distances,
 * memory locality, branch behaviour) are calibrated per benchmark in
 * src/workload. Running these streams through the out-of-order core
 * produces per-unit activity traces with the same thermal signatures
 * the DTM policies key on.
 */

#ifndef COOLCMP_UARCH_SYNTHETIC_STREAM_HH
#define COOLCMP_UARCH_SYNTHETIC_STREAM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "uarch/isa.hh"
#include "util/rng.hh"

namespace coolcmp {

/** Tunable statistics of a synthetic instruction stream. */
struct StreamParams
{
    /** Instruction mix; normalized internally. Order: IntAlu, IntMul,
     *  FpAdd, FpMul, FpDiv, Load, Store, Branch. */
    std::array<double, numOpClasses> mix = {0.45, 0.02, 0.0, 0.0, 0.0,
                                            0.25, 0.13, 0.15};

    /** Mean register dependency distance in dynamic instructions;
     *  smaller = less ILP. */
    double meanDepDist = 6.0;

    /** Probability that an op has a second register source. */
    double secondSrcProb = 0.5;

    /** Fraction of loads writing the FP register file. */
    double fpLoadFrac = 0.0;

    /** Target residency of data accesses: probability that an access
     *  falls in the L1-resident / L2-resident working set. Remaining
     *  accesses go to a memory-sized region. */
    double l1Frac = 0.92;
    double l2Frac = 0.99;

    /** Probability a data access continues a sequential run. */
    double strideProb = 0.55;

    /** Number of distinct static branches. */
    int staticBranches = 512;

    /** Fraction of static branches that are strongly biased (and so
     *  easily predicted). */
    double biasedBranchFrac = 0.9;

    /** Instruction-footprint pressure: probability an instruction
     *  fetch jumps to a random spot in the code footprint. */
    double icacheChurn = 0.0005;

    /** Dynamic code footprint in bytes; fetch loops within it, so a
     *  footprint below the L1I size yields a near-perfect hit rate
     *  while gcc-like benchmarks can set hundreds of kilobytes. */
    std::uint64_t codeFootprint = 32 * 1024;
};

/** Deterministic generator of MicroOps with the given statistics. */
class SyntheticStream
{
  public:
    /**
     * @param params initial stream statistics
     * @param seed per-benchmark RNG seed (same seed => same stream)
     */
    SyntheticStream(const StreamParams &params, std::uint64_t seed);

    /** Change statistics (e.g., at a phase boundary). */
    void setParams(const StreamParams &params);

    const StreamParams &params() const { return params_; }

    /** Produce the next micro-op. */
    MicroOp next();

    /** Current instruction-fetch address (advances with the stream and
     *  jumps on icache churn). */
    std::uint64_t fetchAddr() const { return fetchAddr_; }

    /** Number of micro-ops generated so far. */
    std::uint64_t generated() const { return generated_; }

  private:
    StreamParams params_;
    Rng rng_;
    std::array<double, numOpClasses> cumMix_;

    // Data regions sized to land in L1 / quarter-L2 / memory.
    std::uint64_t hotCursor_;
    std::uint64_t warmCursor_;
    std::uint64_t coldCursor_;

    // Static branch pool with per-branch taken bias.
    std::vector<double> branchBias_;
    std::vector<std::uint64_t> branchPc_;

    std::uint64_t fetchAddr_;
    std::uint64_t generated_ = 0;

    /** Inverse-CDF lookup table for dependency distances (fast path
     *  replacing per-op log evaluations). */
    std::array<std::uint32_t, 256> depDistTable_;

    void normalizeMix();
    void rebuildDepDistTable();
    void rebuildBranches(std::uint64_t seed);
    std::uint64_t dataAddress();
};

} // namespace coolcmp

#endif // COOLCMP_UARCH_SYNTHETIC_STREAM_HH
