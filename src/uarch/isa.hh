/**
 * @file
 * Micro-operation model for the synthetic out-of-order core.
 *
 * The trace-based methodology of the paper needs per-unit activity
 * counts, not architectural semantics, so micro-ops carry only what
 * affects timing and unit usage: an operation class, dependency
 * distances, a memory address, and a branch identity/outcome.
 */

#ifndef COOLCMP_UARCH_ISA_HH
#define COOLCMP_UARCH_ISA_HH

#include <cstdint>
#include <cstddef>
#include <string>

namespace coolcmp {

/** Operation classes, mapped onto the Table 3 functional units. */
enum class OpClass : unsigned {
    IntAlu = 0, ///< FXU, 1 cycle
    IntMul,     ///< FXU, 7 cycles
    FpAdd,      ///< FPU, 4 cycles
    FpMul,      ///< FPU, 4 cycles
    FpDiv,      ///< FPU, 12 cycles, unpipelined
    Load,       ///< LSU, cache-dependent latency
    Store,      ///< LSU, 1 cycle into the store buffer
    Branch,     ///< BXU, 1 cycle
    NumClasses,
};

constexpr std::size_t numOpClasses =
    static_cast<std::size_t>(OpClass::NumClasses);

/** Printable op-class name. */
const std::string &opClassName(OpClass cls);

/** True for FpAdd/FpMul/FpDiv. */
constexpr bool
isFloat(OpClass cls)
{
    return cls == OpClass::FpAdd || cls == OpClass::FpMul ||
        cls == OpClass::FpDiv;
}

/** True for Load/Store. */
constexpr bool
isMemory(OpClass cls)
{
    return cls == OpClass::Load || cls == OpClass::Store;
}

/** Execution latency in cycles, excluding cache misses. */
constexpr int
baseLatency(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return 1;
      case OpClass::IntMul: return 7;
      case OpClass::FpAdd: return 4;
      case OpClass::FpMul: return 4;
      case OpClass::FpDiv: return 12;
      case OpClass::Load: return 1;   // plus memory-hierarchy latency
      case OpClass::Store: return 1;
      case OpClass::Branch: return 1;
      default: return 1;
    }
}

/** One micro-operation produced by the synthetic stream. */
struct MicroOp
{
    OpClass cls = OpClass::IntAlu;
    /** Dependency distances in dynamic instructions (0 = no source). */
    std::uint32_t srcDist[2] = {0, 0};
    /** Effective address for memory operations. */
    std::uint64_t addr = 0;
    /** Static branch identity for predictor indexing. */
    std::uint64_t pc = 0;
    /** Actual branch outcome. */
    bool taken = false;
    /** Load destined for the FP register file. */
    bool fpDest = false;
};

} // namespace coolcmp

#endif // COOLCMP_UARCH_ISA_HH
