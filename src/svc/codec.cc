#include "svc/codec.hh"

#include <cmath>
#include <sstream>

#include "core/sweep_journal.hh"
#include "workload/benchmark_profile.hh"
#include "workload/workloads.hh"

namespace coolcmp::svc {

namespace {

/** Non-fatal Table 4 lookup (findWorkload aborts on unknown names,
 *  which a network-facing decoder must never do). */
const Workload *
tryFindWorkload(const std::string &name)
{
    for (const Workload &w : table4Workloads())
        if (w.name == name)
            return &w;
    return nullptr;
}

/** Non-fatal SPEC2000 profile existence check. */
bool
profileExists(const std::string &name)
{
    for (const BenchmarkProfile &p : spec2000Profiles())
        if (p.name == name)
            return true;
    return false;
}

std::string
parsePolicy(const JsonValue &node, PolicyConfig &out)
{
    if (!node.isObject())
        return "policy must be an object";
    if (const JsonValue *v = node.find("mechanism")) {
        const std::string &s = v->asString();
        if (s == "stop-go" || s == "stopgo")
            out.mechanism = ThrottleMechanism::StopGo;
        else if (s == "dvfs")
            out.mechanism = ThrottleMechanism::Dvfs;
        else
            return "unknown mechanism '" + s +
                "' (want stop-go | dvfs)";
    }
    if (const JsonValue *v = node.find("scope")) {
        const std::string &s = v->asString();
        if (s == "global")
            out.scope = ControlScope::Global;
        else if (s == "distributed" || s == "dist")
            out.scope = ControlScope::Distributed;
        else
            return "unknown scope '" + s +
                "' (want global | distributed)";
    }
    if (const JsonValue *v = node.find("migration")) {
        const std::string &s = v->asString();
        if (s == "none")
            out.migration = MigrationKind::None;
        else if (s == "counter")
            out.migration = MigrationKind::CounterBased;
        else if (s == "sensor")
            out.migration = MigrationKind::SensorBased;
        else
            return "unknown migration '" + s +
                "' (want none | counter | sensor)";
    }
    return {};
}

std::string
parseJob(const JsonValue &node, std::size_t index, RunJob &out)
{
    const std::string where = "jobs[" + std::to_string(index) + "]";
    if (!node.isObject())
        return where + " must be an object";
    const JsonValue *workload = node.find("workload");
    const JsonValue *benchmarks = node.find("benchmarks");
    if (workload && benchmarks)
        return where + ": give workload or benchmarks, not both";
    if (workload) {
        if (!workload->isString())
            return where + ".workload must be a string";
        const Workload *found = tryFindWorkload(workload->asString());
        if (!found)
            return where + ": unknown workload '" +
                workload->asString() + "'";
        out.workload = *found;
    } else if (benchmarks) {
        if (!benchmarks->isArray() || benchmarks->items().empty() ||
            benchmarks->items().size() > 64)
            return where +
                ".benchmarks must be an array of 1..64 names";
        std::string name = "custom";
        out.workload.benchmarks.resize(benchmarks->items().size());
        for (std::size_t i = 0; i < benchmarks->items().size(); ++i) {
            const JsonValue &b = benchmarks->items()[i];
            if (!b.isString() || !profileExists(b.asString()))
                return where + ": unknown benchmark '" +
                    b.asString() + "'";
            out.workload.benchmarks[i] = b.asString();
            name += "-" + b.asString();
        }
        out.workload.name = name;
    } else {
        return where + " needs a workload or benchmarks";
    }
    if (const JsonValue *policy = node.find("policy")) {
        const std::string error = parsePolicy(*policy, out.policy);
        if (!error.empty())
            return where + "." + error;
    }
    return {};
}

std::string
parseOptions(const JsonValue &node, SweepOptions &out)
{
    if (!node.isObject())
        return "options must be an object";
    auto number = [&](const char *key, double &into,
                      bool integral) -> std::string {
        const JsonValue *v = node.find(key);
        if (!v)
            return {};
        if (!v->isNumber() ||
            (integral &&
             v->asDouble() != std::floor(v->asDouble())))
            return std::string("options.") + key +
                " must be a number";
        into = v->asDouble();
        return {};
    };
    double threads = static_cast<double>(out.threads);
    double maxAttempts = out.maxAttempts;
    std::string error;
    if (!(error = number("threads", threads, true)).empty())
        return error;
    if (!(error = number("timeout_s", out.jobTimeoutSeconds, false))
             .empty())
        return error;
    if (!(error = number("max_attempts", maxAttempts, true)).empty())
        return error;
    if (!(error = number("backoff_s", out.retryBackoffSeconds, false))
             .empty())
        return error;
    if (!(error = number("rom_tolerance", out.romTolerance, false))
             .empty())
        return error;
    if (const JsonValue *v = node.find("floorplan")) {
        if (!v->isString())
            return "options.floorplan must be a string";
        if (v->asString().size() > 65536)
            return "options.floorplan is too large";
        out.floorplan = v->asString();
    }
    if (threads < 0 || threads > 64)
        return "options.threads must be in [0, 64]";
    out.threads = static_cast<std::size_t>(threads);
    // Range errors beyond decodability (negative timeout, zero
    // attempts) are validate()'s job, so they surface as
    // invalid_request, not bad_request.
    out.maxAttempts = static_cast<int>(maxAttempts);
    return {};
}

} // namespace

std::string
parseSweepRequest(const JsonValue &root, WireSweep &out)
{
    out = WireSweep{};
    if (!root.isObject())
        return "request body must be a JSON object";
    if (const JsonValue *v = root.find("schema_version")) {
        // Absent means v1 (bodies predate versioning); 1 and 2 are
        // understood; anything else is a distinct, retryable-after-
        // upgrade failure the daemon maps to bad_schema_version.
        if (!v->isNumber() ||
            v->asDouble() != std::floor(v->asDouble()) ||
            (v->asDouble() != 1.0 && v->asDouble() != 2.0))
            return "unsupported schema_version (want 1 or 2)";
    }
    if (const JsonValue *v = root.find("client")) {
        if (!v->isString() || v->asString().empty())
            return "client must be a non-empty string";
        if (v->asString().size() > 64)
            return "client must be at most 64 characters";
        out.client = v->asString();
    }
    if (const JsonValue *v = root.find("priority")) {
        if (!v->isNumber() ||
            v->asDouble() != std::floor(v->asDouble()) ||
            std::fabs(v->asDouble()) > 1e6)
            return "priority must be a small integer";
        out.priority = static_cast<int>(v->asDouble());
    }
    const JsonValue *jobs = root.find("jobs");
    if (!jobs || !jobs->isArray() || jobs->items().empty())
        return "jobs must be a non-empty array";
    std::vector<RunJob> parsed;
    parsed.reserve(jobs->items().size());
    for (std::size_t i = 0; i < jobs->items().size(); ++i) {
        RunJob job;
        const std::string error = parseJob(jobs->items()[i], i, job);
        if (!error.empty())
            return error;
        parsed.push_back(std::move(job));
    }
    out.request.withJobs(std::move(parsed));
    if (const JsonValue *options = root.find("options")) {
        SweepOptions decoded;
        const std::string error = parseOptions(*options, decoded);
        if (!error.empty())
            return error;
        out.request.withOptions(std::move(decoded));
    }
    return {};
}

std::string
mechanismToken(ThrottleMechanism mechanism)
{
    return mechanism == ThrottleMechanism::StopGo ? "stop-go" : "dvfs";
}

std::string
scopeToken(ControlScope scope)
{
    return scope == ControlScope::Global ? "global" : "distributed";
}

std::string
migrationToken(MigrationKind kind)
{
    switch (kind) {
      case MigrationKind::None: return "none";
      case MigrationKind::CounterBased: return "counter";
      default: return "sensor";
    }
}

JsonValue
sweepRequestToJson(const WireSweep &sweep)
{
    JsonValue root = JsonValue::object();
    root.set("schema_version", 2);
    root.set("client", sweep.client);
    root.set("priority", sweep.priority);
    JsonValue jobs = JsonValue::array();
    for (const RunJob &job : sweep.request.jobs()) {
        JsonValue node = JsonValue::object();
        // A Table 4 workload round-trips by name; anything else (a
        // custom mix built via "benchmarks") re-emits the explicit
        // benchmark list.
        if (tryFindWorkload(job.workload.name)) {
            node.set("workload", job.workload.name);
        } else {
            JsonValue benchmarks = JsonValue::array();
            for (const std::string &b : job.workload.benchmarks)
                benchmarks.push(b);
            node.set("benchmarks", std::move(benchmarks));
        }
        JsonValue policy = JsonValue::object();
        policy.set("mechanism", mechanismToken(job.policy.mechanism));
        policy.set("scope", scopeToken(job.policy.scope));
        policy.set("migration", migrationToken(job.policy.migration));
        node.set("policy", std::move(policy));
        jobs.push(std::move(node));
    }
    root.set("jobs", std::move(jobs));
    const SweepOptions &options = sweep.request.options();
    JsonValue opts = JsonValue::object();
    opts.set("threads", options.threads);
    opts.set("timeout_s", options.jobTimeoutSeconds);
    opts.set("max_attempts", options.maxAttempts);
    opts.set("backoff_s", options.retryBackoffSeconds);
    opts.set("rom_tolerance", options.romTolerance);
    if (!options.floorplan.empty())
        opts.set("floorplan", options.floorplan);
    root.set("options", std::move(opts));
    return root;
}

std::string
runMetricsToBody(const RunMetrics &m)
{
    std::ostringstream out;
    writeRunMetricsBody(out, m);
    return out.str();
}

bool
runMetricsFromBody(const std::string &body, RunMetrics &m)
{
    std::istringstream in(body);
    return readRunMetricsBody(in, m);
}

namespace {

/** Parse exactly `n` lower/upper hex chars at `at`; false otherwise. */
bool
hexField(const std::string &s, std::size_t at, std::size_t n,
         std::uint64_t &out)
{
    if (s.size() < at + n)
        return false;
    out = 0;
    for (std::size_t i = at; i < at + n; ++i) {
        const char c = s[i];
        out <<= 4;
        if (c >= '0' && c <= '9')
            out |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            out |= static_cast<std::uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            out |= static_cast<std::uint64_t>(c - 'A' + 10);
        else
            return false;
    }
    return true;
}

const std::string *
findString(const JsonValue &v, const char *key)
{
    const JsonValue *node = v.find(key);
    return node && node->isString() ? &node->asString() : nullptr;
}

} // namespace

JsonValue
spanToJson(const obs::Span &span)
{
    const obs::TraceContext ctx{span.traceHi, span.traceLo,
                                span.spanId};
    JsonValue out = JsonValue::object();
    out.set("trace_id", ctx.traceIdHex());
    out.set("span_id", ctx.spanIdHex());
    out.set("parent_id",
            obs::TraceContext{0, 0, span.parentId}.spanIdHex());
    out.set("name", span.name);
    out.set("start_us", span.startUs);
    out.set("dur_us", span.durUs);
    out.set("job", static_cast<double>(span.job));
    return out;
}

bool
spanFromJson(const JsonValue &v, obs::Span &out)
{
    if (!v.isObject())
        return false;
    const std::string *traceId = findString(v, "trace_id");
    const std::string *spanId = findString(v, "span_id");
    const std::string *name = findString(v, "name");
    if (!traceId || traceId->size() != 32 || !spanId ||
        spanId->size() != 16 || !name)
        return false;
    obs::Span span;
    if (!hexField(*traceId, 0, 16, span.traceHi) ||
        !hexField(*traceId, 16, 16, span.traceLo) ||
        !hexField(*spanId, 0, 16, span.spanId))
        return false;
    if (const std::string *parent = findString(v, "parent_id")) {
        if (parent->size() != 16 ||
            !hexField(*parent, 0, 16, span.parentId))
            return false;
    }
    span.name = *name;
    if (const JsonValue *node = v.find("start_us"))
        span.startUs = node->asDouble();
    if (const JsonValue *node = v.find("dur_us"))
        span.durUs = node->asDouble();
    if (const JsonValue *node = v.find("job"))
        span.job = static_cast<std::int64_t>(node->asDouble(-1.0));
    out = std::move(span);
    return true;
}

JsonValue
spansToJson(const std::vector<obs::Span> &spans)
{
    JsonValue out = JsonValue::array();
    for (const obs::Span &span : spans)
        out.push(spanToJson(span));
    return out;
}

std::vector<obs::Span>
spansFromJson(const JsonValue &v)
{
    std::vector<obs::Span> out;
    if (!v.isArray())
        return out;
    for (const JsonValue &item : v.items()) {
        obs::Span span;
        if (spanFromJson(item, span))
            out.push_back(std::move(span));
    }
    return out;
}

JsonValue
metricsSnapshotToJson(const obs::MetricsSnapshot &snap)
{
    JsonValue out = JsonValue::object();
    JsonValue counters = JsonValue::object();
    for (const auto &[name, value] : snap.counters)
        counters.set(name, static_cast<double>(value));
    out.set("counters", std::move(counters));
    JsonValue gauges = JsonValue::object();
    for (const auto &[name, value] : snap.gauges)
        gauges.set(name, value);
    out.set("gauges", std::move(gauges));
    return out;
}

void
metricsSnapshotFromJson(const JsonValue &v, obs::MetricsSnapshot &out)
{
    out.counters.clear();
    out.gauges.clear();
    if (!v.isObject())
        return;
    if (const JsonValue *counters = v.find("counters");
        counters && counters->isObject())
        for (const auto &[name, value] : counters->members())
            out.counters.emplace_back(
                name,
                static_cast<std::uint64_t>(value.asDouble()));
    if (const JsonValue *gauges = v.find("gauges");
        gauges && gauges->isObject())
        for (const auto &[name, value] : gauges->members())
            out.gauges.emplace_back(name, value.asDouble());
}

} // namespace coolcmp::svc
