/**
 * @file
 * Multi-client HTTP/1.1 substrate for the sweep service daemon —
 * the promotion of obs/http_server's single-threaded scrape endpoint
 * into something that can hold many concurrent API clients:
 *
 *   - a poll()-driven accept loop handing connections to a fixed
 *     pool of connection workers (blocking I/O per connection, no
 *     thread-per-client explosion),
 *   - persistent connections (HTTP/1.1 keep-alive with
 *     Content-Length framing) so a closed-loop client pays one
 *     connect for its whole session,
 *   - a hard request-size bound (413 on oversized bodies, 400 on
 *     malformed framing) enforced before any allocation grows, and
 *   - graceful shutdown: stop() closes the listener, lets in-flight
 *     requests finish, then joins every worker.
 *
 * The server is routing-agnostic: one Handler callback maps requests
 * to responses (the daemon layers the /v1, /metrics and /healthz
 * routes on top). A minimal blocking HttpClient lives here too,
 * shared by the
 * load generator and the socket-level tests.
 */

#ifndef COOLCMP_SVC_HTTP_HH
#define COOLCMP_SVC_HTTP_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace coolcmp::svc {

/** One parsed request. Header names are lower-cased on parse. */
struct HttpRequest
{
    std::string method;
    std::string path;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Header lookup by lower-case name; null when absent. */
    const std::string *header(const std::string &name) const;
};

/** One response (also doubles as the client-side parse target). */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
    /** Force Connection: close after this response. */
    bool closeConnection = false;
    /** Serve with Transfer-Encoding: chunked instead of
     *  Content-Length — large bodies (a 10k-job sweep result) go out
     *  in bounded frames instead of one contiguous buffer, and the
     *  client can start consuming before the last byte is framed.
     *  HttpClient dechunks transparently; `body` holds the payload
     *  either way. */
    bool chunked = false;
};

/** Reason phrase for the status codes the service emits. */
const char *httpStatusText(int status);

class HttpServer
{
  public:
    struct Options
    {
        /** Loopback port; 0 binds an ephemeral one (see port()). */
        std::uint16_t port = 0;
        /** Connection workers = max concurrently-served clients. */
        std::size_t connectionThreads = 8;
        /** Hard cap on one request (line + headers + body). */
        std::size_t maxRequestBytes = std::size_t{1} << 20;
        /** Idle keep-alive connections are dropped after this. */
        int idleTimeoutMs = 5000;
    };

    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    HttpServer(Options options, Handler handler);
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Bind 127.0.0.1 and launch the accept loop + workers; false
     *  (with a warning) when the bind fails. Idempotent. */
    bool start();

    /** Graceful: close the listener, finish in-flight requests,
     *  join every thread. Idempotent. */
    void stop();

    bool running() const;

    /** Actual bound port (resolves port-0 requests); 0 if stopped. */
    std::uint16_t port() const;

  private:
    const Options options_;
    const Handler handler_;

    mutable std::mutex lifecycleMutex_;
    std::thread acceptThread_;
    std::vector<std::thread> workers_;
    bool started_ = false;
    std::uint16_t port_ = 0;
    int listenFd_ = -1;

    std::atomic<bool> stopping_{false};

    /** Accepted fds awaiting a connection worker. */
    std::mutex connMutex_;
    std::condition_variable connAvailable_;
    std::deque<int> pendingConns_;

    void acceptLoop(int listenFd);
    void connectionWorker();
    void serveConnection(int fd);
};

/**
 * Minimal blocking HTTP/1.1 client over one persistent loopback
 * connection; reconnects transparently when the server closed it.
 */
class HttpClient
{
  public:
    HttpClient(std::string host, std::uint16_t port);
    ~HttpClient();

    HttpClient(const HttpClient &) = delete;
    HttpClient &operator=(const HttpClient &) = delete;

    /**
     * Issue one request and block for the response. Extra headers are
     * (name, value) pairs. False on transport failure (connect, send,
     * or response framing), with the response left untouched.
     */
    bool request(const std::string &method, const std::string &path,
                 const std::string &body, HttpResponse &out,
                 const std::vector<std::pair<std::string, std::string>>
                     &headers = {});

  private:
    const std::string host_;
    const std::uint16_t port_;
    int fd_ = -1;

    bool ensureConnected();
    void disconnect();
    bool readResponse(HttpResponse &out, bool &serverCloses);
};

} // namespace coolcmp::svc

#endif // COOLCMP_SVC_HTTP_HH
