#include "svc/daemon.hh"

#include <chrono>
#include <sstream>
#include <utility>

#include "obs/prom_export.hh"
#include "svc/build_info.hh"
#include "svc/codec.hh"
#include "util/logging.hh"

namespace coolcmp::svc {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

HttpResponse
jsonResponse(int status, const JsonValue &body)
{
    HttpResponse response;
    response.status = status;
    response.body = jsonToString(body);
    return response;
}

/** Machine-readable error envelope: "error" is the stable code a
 *  client switches on, "message" the human diagnostic. */
HttpResponse
errorResponse(int status, const std::string &code,
              const std::string &message = {})
{
    JsonValue body = JsonValue::object();
    body.set("error", code);
    if (!message.empty())
        body.set("message", message);
    return jsonResponse(status, body);
}

/** Result payloads past this size are served with
 *  Transfer-Encoding: chunked so a very large sweep's result body
 *  streams in bounded frames instead of one Content-Length blob. */
constexpr std::size_t kChunkedResultBytes = std::size_t{256} << 10;

/** Latency buckets: 1 ms doubling up to ~17 min. */
std::vector<double>
latencyEdges()
{
    return obs::Histogram::exponentialEdges(1e-3, 2.0, 20);
}

} // namespace

SweepServiceDaemon::SweepServiceDaemon(Options options,
                                       DtmConfig config,
                                       TraceBuilderConfig traceConfig)
    : options_(std::move(options)), config_(std::move(config)),
      traceConfig_(std::move(traceConfig)),
      queue_(options_.queueDepth), jobs_(options_.maxRetainedJobs),
      quotas_(options_.quotaRatePerSec, options_.quotaBurst)
{
    // Trace ids derive from the engine configKey so a replayed run
    // produces identical ids; a throwaway engine computes it once.
    traceKey_ = configKeyHex(
        Experiment(config_, traceConfig_).configKey());
}

SweepServiceDaemon::~SweepServiceDaemon()
{
    stop();
}

bool
SweepServiceDaemon::start()
{
    if (started_.load())
        return true;

    HttpServer::Options http;
    http.port = options_.port;
    http.connectionThreads = options_.httpThreads;
    http.maxRequestBytes = options_.maxRequestBytes;
    http_ = std::make_unique<HttpServer>(
        http, [this](const HttpRequest &r) { return handle(r); });
    if (!http_->start()) {
        http_.reset();
        return false;
    }

    started_.store(true);
    draining_.store(false);
    workers_.reserve(options_.workers);
    for (std::size_t i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this, i] { workerMain(i); });
    inform("coolcmpd serving on 127.0.0.1:", http_->port(), " with ",
           options_.workers, " sweep workers, queue depth ",
           options_.queueDepth);
    return true;
}

void
SweepServiceDaemon::stop()
{
    if (!started_.exchange(false))
        return;
    // Drain order: refuse new admissions, let the workers finish
    // everything already accepted (clients can still poll status and
    // fetch results meanwhile), then take the listener down.
    draining_.store(true);
    queue_.close();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();
    if (http_) {
        http_->stop();
        http_.reset();
    }
}

std::uint16_t
SweepServiceDaemon::port() const
{
    return http_ ? http_->port() : 0;
}

void
SweepServiceDaemon::workerMain(std::size_t index)
{
    try {
        // A private engine per worker: concurrent sweeps never share
        // mutable state, so service results stay bit-identical to
        // direct in-process runs. The registry is the one shared
        // sink (it is thread-safe by design).
        DtmConfig config = config_;
        config.registry = &registry_;
        config.tracer = nullptr;
        Experiment experiment(config, traceConfig_);
        experiment.setRunReportPath({}); // report consumed in memory

        while (std::shared_ptr<SweepJob> job = queue_.pop())
            executeJob(experiment, job);
    } catch (const std::exception &e) {
        warn("sweep worker ", index, " died: ", e.what());
        registry_.counter("svc.workers.died").add();
    } catch (...) {
        warn("sweep worker ", index, " died: unknown exception");
        registry_.counter("svc.workers.died").add();
    }
}

void
SweepServiceDaemon::executeJob(Experiment &experiment,
                               const std::shared_ptr<SweepJob> &job)
{
    const auto t0 = Clock::now();
    const double pickupUs = obs::SpanCollector::nowUs();
    {
        std::lock_guard<std::mutex> lock(job->mutex);
        job->state = JobState::Running;
        job->waitSeconds = secondsSince(job->submitted, t0);
    }
    {
        obs::Span wait = obs::makeSpan(
            job->trace.withSpan(
                obs::deriveSpanId(job->trace, "queue.wait", 0)),
            job->trace.spanId, "queue.wait");
        wait.startUs = job->submittedUs;
        wait.durUs = pickupUs - job->submittedUs;
        spans_.record(std::move(wait));
    }
    registry_.gauge("svc.queue.depth")
        .set(static_cast<double>(queue_.depth()));
    registry_.gauge("svc.jobs.running")
        .set(static_cast<double>(++runningJobs_));
    registry_.histogram("svc.job.wait_seconds", latencyEdges())
        .observe(secondsSince(job->submitted, t0));

    bool failed = false;
    std::string error;
    try {
        // Server-side cache policy: every job shares the daemon's
        // result directory (the cross-tenant memo); clients cannot
        // pick filesystem paths.
        RunRequest request = job->request;
        request.cacheResults(options_.resultDir);

        std::vector<RunMetrics> results = experiment.run(request);
        const obs::RunReport &report = experiment.lastRunReport();

        std::lock_guard<std::mutex> lock(job->mutex);
        job->results = std::move(results);
        job->configKey = report.configKey;
        job->cachedJobs = report.cachedJobs;
        job->fromCache.assign(job->request.jobs().size(), 0);
        for (std::size_t i = 0; i < report.jobEntries.size() &&
             i < job->fromCache.size();
             ++i)
            job->fromCache[i] = report.jobEntries[i].fromCache;
        if (report.failedJobs > 0) {
            failed = true;
            error = std::to_string(report.failedJobs) + " of " +
                std::to_string(report.jobs) +
                " jobs failed (deadline exhausted)";
        }
    } catch (const std::exception &e) {
        failed = true;
        error = e.what();
    }

    const double runSeconds = secondsSince(t0, Clock::now());
    {
        std::lock_guard<std::mutex> lock(job->mutex);
        job->runSeconds = runSeconds;
        job->state = failed ? JobState::Failed : JobState::Done;
        job->error = error;
    }
    jobs_.retire(job);
    registry_.counter(failed ? "svc.jobs.failed"
                             : "svc.jobs.completed")
        .add();
    if (!failed) {
        std::lock_guard<std::mutex> lock(job->mutex);
        if (job->cachedJobs > 0)
            registry_.counter("svc.cache.hits").add(job->cachedJobs);
    }
    registry_.histogram("svc.job.run_seconds", latencyEdges())
        .observe(runSeconds);
    registry_.gauge("svc.jobs.running")
        .set(static_cast<double>(--runningJobs_));
    obs::Span run = obs::makeSpan(
        job->trace.withSpan(
            obs::deriveSpanId(job->trace, "job.run", 0)),
        job->trace.spanId, failed ? "job.run (failed)" : "job.run");
    run.startUs = pickupUs;
    run.durUs = runSeconds * 1e6;
    spans_.record(std::move(run));
}

HttpResponse
SweepServiceDaemon::handle(const HttpRequest &request)
{
    if (request.method == "GET") {
        if (request.path == "/healthz")
            return handleHealth();
        if (request.path == "/metrics" || request.path == "/")
            return handleMetrics();
        const std::string prefix = "/v1/jobs/";
        if (request.path.rfind(prefix, 0) == 0) {
            std::string rest = request.path.substr(prefix.size());
            const std::string resultSuffix = "/result";
            if (rest.size() > resultSuffix.size() &&
                rest.compare(rest.size() - resultSuffix.size(),
                             resultSuffix.size(),
                             resultSuffix) == 0)
                return handleJobResult(rest.substr(
                    0, rest.size() - resultSuffix.size()));
            return handleJobStatus(rest);
        }
        return errorResponse(404, "not_found");
    }
    if (request.method == "POST") {
        if (request.path == "/v1/sweeps")
            return handleSubmit(request);
        return errorResponse(404, "not_found");
    }
    return errorResponse(405, "method_not_allowed");
}

HttpResponse
SweepServiceDaemon::handleSubmit(const HttpRequest &request)
{
    if (draining_.load() || !started_.load())
        return errorResponse(503, "shutting_down");

    JsonValue root;
    const std::string jsonError = parseJson(request.body, root);
    if (!jsonError.empty()) {
        registry_.counter("svc.jobs.rejected").add();
        return errorResponse(400, "bad_json", jsonError);
    }

    WireSweep sweep;
    const std::string decodeError = parseSweepRequest(root, sweep);
    if (!decodeError.empty()) {
        registry_.counter("svc.jobs.rejected").add();
        // A version mismatch is actionable by upgrading the client,
        // unlike a malformed body, so it gets its own error code.
        const bool badVersion =
            decodeError.rfind("unsupported schema_version", 0) == 0;
        return errorResponse(
            400, badVersion ? "bad_schema_version" : "bad_request",
            decodeError);
    }

    // Client identity: explicit body field, else the X-Client-Id
    // header, else anonymous (one shared quota bucket).
    if (!root.find("client")) {
        if (const std::string *h = request.header("x-client-id"))
            if (!h->empty() && h->size() <= 64)
                sweep.client = *h;
    }

    // Semantic validation is the engine's own validate(): the wire
    // schema cannot drift from the in-process contract.
    const std::string invalid = sweep.request.validate();
    if (!invalid.empty()) {
        registry_.counter("svc.jobs.rejected").add();
        return errorResponse(400, "invalid_request", invalid);
    }

    const auto now = Clock::now();
    if (!quotas_.admit(sweep.client, now)) {
        registry_.counter("svc.jobs.rejected").add();
        registry_.counter("svc.quota.trips").add();
        registry_
            .counter(obs::labeledName("svc.quota_trips",
                                      {{"client", sweep.client}}))
            .add();
        return errorResponse(429, "quota_exceeded",
                             "client '" + sweep.client +
                                 "' is over its admission rate");
    }

    auto job = std::make_shared<SweepJob>();
    job->client = sweep.client;
    job->priority = sweep.priority;
    job->request = std::move(sweep.request);
    job->submitted = now;
    job->submittedUs = obs::SpanCollector::nowUs();
    // Adopt the caller's trace context (one trace from loadgen to
    // engine), else derive deterministic ids from configKey + seq.
    const std::uint64_t seq = ++submitSeq_;
    if (const std::string *tp = request.header("traceparent");
        !tp || !obs::TraceContext::parse(*tp, job->trace))
        job->trace = obs::TraceContext::derive(traceKey_, seq);
    const std::string id = jobs_.add(job);

    const AdmissionQueue::Admit admitted = queue_.submit(job);
    if (admitted != AdmissionQueue::Admit::Accepted) {
        jobs_.remove(id);
        registry_.counter("svc.jobs.rejected").add();
        if (admitted == AdmissionQueue::Admit::Closed)
            return errorResponse(503, "shutting_down");
        return errorResponse(429, "queue_full",
                             "admission queue is at capacity " +
                                 std::to_string(queue_.capacity()));
    }
    registry_.counter("svc.jobs.accepted").add();
    registry_.gauge("svc.queue.depth")
        .set(static_cast<double>(queue_.depth()));

    JsonValue body = JsonValue::object();
    body.set("job", id);
    body.set("state", jobStateName(JobState::Queued));
    body.set("queue_depth", queue_.depth());
    body.set("trace_id", job->trace.traceIdHex());
    return jsonResponse(202, body);
}

HttpResponse
SweepServiceDaemon::handleJobStatus(const std::string &id)
{
    const std::shared_ptr<SweepJob> job = jobs_.find(id);
    if (!job)
        return errorResponse(404, "not_found",
                             "no job '" + id + "'");
    std::lock_guard<std::mutex> lock(job->mutex);
    JsonValue body = JsonValue::object();
    body.set("job", job->id);
    body.set("state", jobStateName(job->state));
    body.set("client", job->client);
    body.set("priority", job->priority);
    body.set("jobs", job->request.jobs().size());
    body.set("cached", job->cachedJobs);
    body.set("wait_s", job->waitSeconds);
    body.set("run_s", job->runSeconds);
    body.set("trace_id", job->trace.traceIdHex());
    if (!job->error.empty())
        body.set("error", job->error);
    return jsonResponse(200, body);
}

HttpResponse
SweepServiceDaemon::handleJobResult(const std::string &id)
{
    const std::shared_ptr<SweepJob> job = jobs_.find(id);
    if (!job)
        return errorResponse(404, "not_found",
                             "no job '" + id + "'");
    std::lock_guard<std::mutex> lock(job->mutex);
    if (!job->terminal()) {
        JsonValue body = JsonValue::object();
        body.set("error", "not_done");
        body.set("state", jobStateName(job->state));
        return jsonResponse(409, body);
    }
    JsonValue body = JsonValue::object();
    body.set("job", job->id);
    body.set("state", jobStateName(job->state));
    body.set("config_key", job->configKey);
    body.set("trace_id", job->trace.traceIdHex());
    if (!job->error.empty())
        body.set("error", job->error);
    JsonValue results = JsonValue::array();
    const std::vector<RunJob> &requested = job->request.jobs();
    for (std::size_t i = 0; i < job->results.size(); ++i) {
        JsonValue entry = JsonValue::object();
        if (i < requested.size()) {
            entry.set("workload", requested[i].workload.name);
            entry.set("policy", requested[i].policy.slug());
        }
        entry.set("from_cache",
                  i < job->fromCache.size() &&
                      job->fromCache[i] != 0);
        // The payload IS the v4 result-cache body: a client
        // deserializes the exact bytes the on-disk cache holds, so
        // over-the-wire results are bit-identical to in-process ones.
        entry.set("metrics_v4", runMetricsToBody(job->results[i]));
        results.push(std::move(entry));
    }
    body.set("results", std::move(results));
    HttpResponse response = jsonResponse(200, body);
    response.chunked = response.body.size() > kChunkedResultBytes;
    return response;
}

HttpResponse
SweepServiceDaemon::handleHealth()
{
    const std::size_t depth = queue_.depth();
    const bool saturated = queue_.saturated();
    const std::uint64_t workersDead =
        registry_.counter("svc.workers.died").value();
    const bool draining = draining_.load();
    const bool healthy = !saturated && workersDead == 0 && !draining;

    JsonValue body = JsonValue::object();
    body.set("status", draining        ? "draining"
                       : healthy       ? "ok"
                                       : "degraded");
    body.set("queue_depth", depth);
    body.set("queue_capacity", queue_.capacity());
    body.set("workers", options_.workers);
    body.set("workers_dead", workersDead);
    body.set("jobs_running",
             runningJobs_.load(std::memory_order_relaxed));
    body.set("build", buildInfoJson());
    HttpResponse response =
        jsonResponse(healthy ? 200 : 503, body);
    return response;
}

HttpResponse
SweepServiceDaemon::handleMetrics()
{
    registry_.gauge("svc.queue.depth")
        .set(static_cast<double>(queue_.depth()));
    std::ostringstream body;
    obs::writePrometheus(body, registry_);
    HttpResponse response;
    response.contentType = "text/plain; version=0.0.4";
    response.body = body.str();
    return response;
}

} // namespace coolcmp::svc
