/**
 * @file
 * Build attribution for fleet artifacts: git describe, compiler, and
 * the SIMD tier the running process dispatched to. Exposed on every
 * `/healthz` and `/v1/status` so a trace, scrape, or flight-recorder
 * dump collected from a multi-host fleet can always be tied back to
 * the binary that produced it.
 */

#ifndef COOLCMP_SVC_BUILD_INFO_HH
#define COOLCMP_SVC_BUILD_INFO_HH

#include <string>

#include "svc/json.hh"

namespace coolcmp::svc {

struct BuildInfo
{
    std::string version;  ///< `git describe` at configure time
    std::string compiler; ///< compiler id + version
    std::string simd;     ///< runtime-dispatched SIMD tier name
};

/** The running binary's attribution (SIMD tier resolved now). */
BuildInfo buildInfo();

/** `{"version": ..., "compiler": ..., "simd": ...}`. */
JsonValue buildInfoJson();

} // namespace coolcmp::svc

#endif // COOLCMP_SVC_BUILD_INFO_HH
