/**
 * @file
 * Admission control for the sweep service: a bounded priority queue
 * in front of the worker pool, per-client token-bucket quotas, and
 * the job table that tracks every submission through
 * queued -> running -> done | failed.
 *
 * Echoing the admission/assignment framing of SMDP thermal-aware
 * scheduling (arXiv:2009.02813): requests are admitted (or shed with
 * an explicit, immediately-visible rejection) at the door, then
 * assigned to workers by priority — the simulator itself never sees
 * overload.
 */

#ifndef COOLCMP_SVC_ADMISSION_HH
#define COOLCMP_SVC_ADMISSION_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/experiment.hh"
#include "core/metrics.hh"
#include "obs/trace_context.hh"

namespace coolcmp::svc {

/**
 * Classic token bucket: `rate` tokens/s refill up to `burst`. Time is
 * passed in by the caller so tests are deterministic. A rate of 0
 * means "no quota" and always admits.
 */
struct TokenBucket
{
    double rate = 0.0;
    double burst = 1.0;
    double tokens = 1.0;
    std::chrono::steady_clock::time_point last{};

    TokenBucket() = default;
    TokenBucket(double ratePerSec, double burstSize,
                std::chrono::steady_clock::time_point now)
        : rate(ratePerSec), burst(burstSize), tokens(burstSize),
          last(now)
    {
    }

    /** Take one token if available; refills lazily from `now`. */
    bool tryAcquire(std::chrono::steady_clock::time_point now)
    {
        if (rate <= 0.0)
            return true;
        const double dt =
            std::chrono::duration<double>(now - last).count();
        last = now;
        tokens = std::min(burst, tokens + dt * rate);
        if (tokens < 1.0)
            return false;
        tokens -= 1.0;
        return true;
    }
};

/** Lifecycle of one submitted sweep. */
enum class JobState { Queued, Running, Done, Failed };

const char *jobStateName(JobState state);

/** One submitted sweep and everything the status/result endpoints
 *  report about it. Mutable fields are guarded by `mutex`. */
struct SweepJob
{
    // Immutable after admission.
    std::string id;
    std::string client;
    int priority = 0;
    RunRequest request;
    std::chrono::steady_clock::time_point submitted{};
    /** Propagated (traceparent header) or derived trace ids. */
    obs::TraceContext trace;
    /** Wall clock at admission, µs — base of the queue-wait span. */
    double submittedUs = 0.0;

    // Guarded by mutex.
    mutable std::mutex mutex;
    JobState state = JobState::Queued;
    std::string error;        ///< non-empty when state == Failed
    std::string configKey;    ///< hex, filled on completion
    std::vector<RunMetrics> results;
    std::vector<char> fromCache; ///< per-job cache hits
    std::size_t cachedJobs = 0;
    double waitSeconds = 0.0; ///< admission -> worker pickup
    double runSeconds = 0.0;  ///< worker pickup -> completion

    bool terminal() const
    {
        return state == JobState::Done || state == JobState::Failed;
    }
};

/**
 * Bounded priority queue between admission and the workers. Higher
 * priority pops first; within a priority, clients take turns
 * round-robin (so one noisy tenant staying inside its quota can no
 * longer monopolize FIFO order) and each client's own jobs stay
 * FIFO. close() stops admissions while letting pop() drain what is
 * already queued — the graceful-shutdown half of SIGTERM handling.
 */
class AdmissionQueue
{
  public:
    explicit AdmissionQueue(std::size_t capacity);

    enum class Admit { Accepted, Full, Closed };

    Admit submit(std::shared_ptr<SweepJob> job);

    /**
     * Block until a job is available or the queue is closed and
     * drained; null means "no more work, ever" (worker exit).
     */
    std::shared_ptr<SweepJob> pop();

    /** Stop admissions; queued jobs remain poppable (drain). */
    void close();

    bool closed() const;
    std::size_t depth() const;
    std::size_t capacity() const { return capacity_; }

    /** Admission-pressure signal for /healthz. */
    bool saturated() const;

  private:
    /** One priority level: per-client FIFO lanes plus the rotation
     *  deciding whose turn is next. A client appears in `rotation`
     *  exactly once while it has queued jobs. */
    struct PriorityBucket
    {
        std::map<std::string,
                 std::deque<std::shared_ptr<SweepJob>>>
            lanes;
        std::deque<std::string> rotation;
    };

    const std::size_t capacity_;

    mutable std::mutex mutex_;
    std::condition_variable available_;
    bool closed_ = false;
    std::size_t size_ = 0;
    /** Keyed by -priority: begin() is the level that pops next. */
    std::map<int, PriorityBucket> buckets_;
};

/**
 * Id-indexed record of every admitted job. Retention is bounded:
 * once more than `maxRetained` jobs have reached a terminal state,
 * the oldest terminal records are forgotten (their ids then 404) so
 * a long-lived daemon cannot grow without limit.
 */
class JobTable
{
  public:
    explicit JobTable(std::size_t maxRetained = 65536);

    /** Assign the next id ("j-1", "j-2", ...) and index the job. */
    std::string add(const std::shared_ptr<SweepJob> &job);

    std::shared_ptr<SweepJob> find(const std::string &id) const;

    /** Mark `job` terminal for retention accounting (call after its
     *  state is set to Done/Failed). */
    void retire(const std::shared_ptr<SweepJob> &job);

    /** Drop a job outright (admission rolled back before queuing). */
    void remove(const std::string &id);

    std::size_t size() const;

  private:
    const std::size_t maxRetained_;

    mutable std::mutex mutex_;
    std::uint64_t nextId_ = 1;
    std::unordered_map<std::string, std::shared_ptr<SweepJob>> jobs_;
    std::deque<std::string> retired_;
};

/** Per-client token buckets sharing one rate/burst configuration. */
class QuotaSet
{
  public:
    /** @param ratePerSec admissions/s per client; 0 disables quotas
     *  @param burst bucket depth (initial credit) */
    QuotaSet(double ratePerSec, double burst)
        : rate_(ratePerSec), burst_(burst)
    {
    }

    /** True when `client` may admit one more job at `now`. */
    bool admit(const std::string &client,
               std::chrono::steady_clock::time_point now);

  private:
    const double rate_;
    const double burst_;

    std::mutex mutex_;
    std::map<std::string, TokenBucket> buckets_;
};

} // namespace coolcmp::svc

#endif // COOLCMP_SVC_ADMISSION_HH
