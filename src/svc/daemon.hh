/**
 * @file
 * coolcmpd — the sweep service daemon: thermal-sim-as-a-service.
 *
 * One deterministic engine (core::Experiment) behind a JSON/HTTP
 * frontend, following the engine-behind-frontends split: the daemon
 * owns admission, quotas, and job bookkeeping, and the engine stays
 * frontend-agnostic. Endpoints, all on one listener:
 *
 *   POST /v1/sweeps            submit a sweep (svc/codec.hh schema)
 *                              -> 202 {"job": "j-1", ...}
 *                              -> 400 bad_json | bad_request |
 *                                     invalid_request
 *                              -> 429 queue_full | quota_exceeded
 *                              -> 503 shutting_down
 *   GET  /v1/jobs/<id>         job status (queued/running/done/failed)
 *   GET  /v1/jobs/<id>/result  RunMetrics per job, each embedded as
 *                              the v4 cache body (bit-exact)
 *   GET  /metrics              Prometheus text exposition
 *   GET  /healthz              {"status": "ok"} — or "degraded"
 *                              (HTTP 503) when the queue is
 *                              saturated or a worker has died
 *
 * Execution: N workers each own a private Experiment built from the
 * same configuration, so concurrent sweeps proceed truly in parallel
 * while staying bit-identical to direct in-process execution (every
 * simulator owns its RNG streams; nothing is shared mutably). The
 * shared on-disk result cache is the cross-tenant memo: identical
 * configKeys — whoever submitted them — are served without
 * re-simulation, bounded by COOLCMP_CACHE_MAX_MB with LRU eviction.
 *
 * Shutdown is graceful: stop() refuses new admissions, drains every
 * queued job through the workers, finishes in-flight HTTP exchanges,
 * then joins. SIGTERM handling in tools/coolcmpd.cc is just stop().
 */

#ifndef COOLCMP_SVC_DAEMON_HH
#define COOLCMP_SVC_DAEMON_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/dtm_config.hh"
#include "core/experiment.hh"
#include "obs/registry.hh"
#include "obs/trace_context.hh"
#include "svc/admission.hh"
#include "svc/http.hh"

namespace coolcmp::svc {

class SweepServiceDaemon
{
  public:
    struct Options
    {
        /** Loopback port; 0 binds an ephemeral one (see port()). */
        std::uint16_t port = 0;

        /** Sweep workers, each with a private engine. 0 admits but
         *  never runs — useful only for tests of the queue surface. */
        std::size_t workers = 2;

        /** Admission-queue capacity; submissions beyond it get 429
         *  queue_full. */
        std::size_t queueDepth = 64;

        /** Per-client token-bucket rate (sweeps/s); 0 = no quota. */
        double quotaRatePerSec = 0.0;

        /** Token-bucket depth (burst credit) per client. */
        double quotaBurst = 8.0;

        /** Shared result-cache directory (the cross-tenant memo);
         *  empty disables caching. */
        std::string resultDir = ".coolcmpd-results";

        /** HTTP connection workers (concurrent clients served). */
        std::size_t httpThreads = 8;

        /** Request size bound; larger bodies get 413. */
        std::size_t maxRequestBytes = std::size_t{1} << 20;

        /** Completed jobs kept addressable before the oldest are
         *  forgotten. */
        std::size_t maxRetainedJobs = 65536;
    };

    SweepServiceDaemon(Options options, DtmConfig config = {},
                       TraceBuilderConfig traceConfig = {});
    ~SweepServiceDaemon();

    SweepServiceDaemon(const SweepServiceDaemon &) = delete;
    SweepServiceDaemon &operator=(const SweepServiceDaemon &) = delete;

    /** Launch workers and the HTTP frontend; false if the bind
     *  fails. Idempotent. */
    bool start();

    /** Graceful shutdown: close admissions, drain the queue, join
     *  workers and the HTTP pool. Idempotent. */
    void stop();

    bool running() const { return started_.load(); }

    /** Actual bound port (resolves port-0 requests). */
    std::uint16_t port() const;

    /** The daemon's metrics registry (svc.* + engine metrics). */
    obs::Registry &registry() { return registry_; }

    /** Wall-clock request spans (queue wait, run) for `--trace-out`
     *  export; tagged with propagated or derived trace ids. */
    obs::SpanCollector &spanCollector() { return spans_; }

    /**
     * The request router, exposed for handler-level tests; the HTTP
     * server calls exactly this.
     */
    HttpResponse handle(const HttpRequest &request);

  private:
    const Options options_;
    const DtmConfig config_;
    const TraceBuilderConfig traceConfig_;

    obs::Registry registry_;
    obs::SpanCollector spans_;
    AdmissionQueue queue_;
    JobTable jobs_;
    QuotaSet quotas_;
    std::unique_ptr<HttpServer> http_;
    /** Trace-id derivation key: the engine configKey hex, so ids are
     *  reproducible run to run. */
    std::string traceKey_;
    std::atomic<std::uint64_t> submitSeq_{0};

    std::atomic<bool> started_{false};
    std::atomic<bool> draining_{false};
    std::atomic<std::size_t> runningJobs_{0};
    std::vector<std::thread> workers_;

    void workerMain(std::size_t index);
    void executeJob(Experiment &experiment,
                    const std::shared_ptr<SweepJob> &job);

    HttpResponse handleSubmit(const HttpRequest &request);
    HttpResponse handleJobStatus(const std::string &id);
    HttpResponse handleJobResult(const std::string &id);
    HttpResponse handleHealth();
    HttpResponse handleMetrics();
};

} // namespace coolcmp::svc

#endif // COOLCMP_SVC_DAEMON_HH
