#include "svc/admission.hh"

namespace coolcmp::svc {

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      default: return "failed";
    }
}

AdmissionQueue::AdmissionQueue(std::size_t capacity)
    : capacity_(capacity)
{
}

AdmissionQueue::Admit
AdmissionQueue::submit(std::shared_ptr<SweepJob> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return Admit::Closed;
        if (size_ >= capacity_)
            return Admit::Full;
        PriorityBucket &bucket = buckets_[-job->priority];
        std::deque<std::shared_ptr<SweepJob>> &lane =
            bucket.lanes[job->client];
        if (lane.empty())
            bucket.rotation.push_back(job->client);
        lane.push_back(std::move(job));
        ++size_;
    }
    available_.notify_one();
    return Admit::Accepted;
}

std::shared_ptr<SweepJob>
AdmissionQueue::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    available_.wait(lock, [this] { return closed_ || size_ > 0; });
    if (size_ == 0)
        return nullptr;
    auto bucketIt = buckets_.begin();
    PriorityBucket &bucket = bucketIt->second;
    // Whoever waited longest since their last turn goes next; a
    // client with more work re-enters at the back of the rotation.
    const std::string client = std::move(bucket.rotation.front());
    bucket.rotation.pop_front();
    auto laneIt = bucket.lanes.find(client);
    std::shared_ptr<SweepJob> job = std::move(laneIt->second.front());
    laneIt->second.pop_front();
    if (laneIt->second.empty())
        bucket.lanes.erase(laneIt);
    else
        bucket.rotation.push_back(client);
    if (bucket.lanes.empty())
        buckets_.erase(bucketIt);
    --size_;
    return job;
}

void
AdmissionQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    available_.notify_all();
}

bool
AdmissionQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

std::size_t
AdmissionQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
}

bool
AdmissionQueue::saturated() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return size_ >= capacity_;
}

JobTable::JobTable(std::size_t maxRetained)
    : maxRetained_(maxRetained)
{
}

std::string
JobTable::add(const std::shared_ptr<SweepJob> &job)
{
    std::lock_guard<std::mutex> lock(mutex_);
    job->id = "j-" + std::to_string(nextId_++);
    jobs_.emplace(job->id, job);
    return job->id;
}

std::shared_ptr<SweepJob>
JobTable::find(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second;
}

void
JobTable::retire(const std::shared_ptr<SweepJob> &job)
{
    std::lock_guard<std::mutex> lock(mutex_);
    retired_.push_back(job->id);
    while (retired_.size() > maxRetained_) {
        jobs_.erase(retired_.front());
        retired_.pop_front();
    }
}

void
JobTable::remove(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.erase(id);
}

std::size_t
JobTable::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return jobs_.size();
}

bool
QuotaSet::admit(const std::string &client,
                std::chrono::steady_clock::time_point now)
{
    if (rate_ <= 0.0)
        return true;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = buckets_.find(client);
    if (it == buckets_.end())
        it = buckets_
                 .emplace(client, TokenBucket(rate_, burst_, now))
                 .first;
    return it->second.tryAcquire(now);
}

} // namespace coolcmp::svc
