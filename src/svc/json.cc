#include "svc/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace coolcmp::svc {

namespace {

/** Nesting bound: the service schema is ~4 levels deep, so 64 leaves
 *  ample headroom while keeping hostile input from exhausting the
 *  stack. */
constexpr int kMaxDepth = 64;

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error;

    bool fail(const std::string &what)
    {
        if (error.empty())
            error = "byte " + std::to_string(pos) + ": " + what;
        return false;
    }

    bool atEnd() const { return pos >= text.size(); }

    char peek() const { return text[pos]; }

    void skipSpace()
    {
        while (!atEnd()) {
            const char c = text[pos];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            ++pos;
        }
    }

    bool consume(char c)
    {
        if (atEnd() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    bool literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return fail("invalid literal");
        pos += word.size();
        return true;
    }

    /** Append one \uXXXX escape (handling surrogate pairs) as UTF-8. */
    bool unicodeEscape(std::string &out)
    {
        auto hex4 = [&](std::uint32_t &v) {
            if (pos + 4 > text.size())
                return fail("truncated \\u escape");
            v = 0;
            for (int i = 0; i < 4; ++i) {
                const char c = text[pos++];
                v <<= 4;
                if (c >= '0' && c <= '9')
                    v |= static_cast<std::uint32_t>(c - '0');
                else if (c >= 'a' && c <= 'f')
                    v |= static_cast<std::uint32_t>(c - 'a' + 10);
                else if (c >= 'A' && c <= 'F')
                    v |= static_cast<std::uint32_t>(c - 'A' + 10);
                else
                    return fail("invalid \\u escape digit");
            }
            return true;
        };
        std::uint32_t cp = 0;
        if (!hex4(cp))
            return false;
        if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!consume('\\') || !consume('u'))
                return fail("unpaired surrogate");
            std::uint32_t low = 0;
            if (!hex4(low))
                return false;
            if (low < 0xDC00 || low > 0xDFFF)
                return fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
        }
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
        return true;
    }

    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (!atEnd()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (atEnd())
                return fail("truncated escape");
            const char e = text[pos++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u':
                if (!unicodeEscape(out))
                    return false;
                break;
              default: return fail("invalid escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue &out)
    {
        const std::size_t start = pos;
        if (consume('-')) {
        }
        if (atEnd() || peek() < '0' || peek() > '9')
            return fail("invalid number");
        while (!atEnd() &&
               ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                peek() == 'e' || peek() == 'E' || peek() == '+' ||
                peek() == '-'))
            ++pos;
        const std::string token(text.substr(start, pos - start));
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || !std::isfinite(v)) {
            pos = start;
            return fail("invalid number");
        }
        out = JsonValue(v);
        return true;
    }

    bool parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (atEnd())
            return fail("unexpected end of input");
        switch (peek()) {
          case '{': {
            ++pos;
            JsonValue obj = JsonValue::object();
            skipSpace();
            if (consume('}')) {
                out = std::move(obj);
                return true;
            }
            for (;;) {
                skipSpace();
                std::string key;
                if (!parseString(key))
                    return false;
                skipSpace();
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue member;
                if (!parseValue(member, depth + 1))
                    return false;
                obj.set(std::move(key), std::move(member));
                skipSpace();
                if (consume(','))
                    continue;
                if (consume('}'))
                    break;
                return fail("expected ',' or '}'");
            }
            out = std::move(obj);
            return true;
          }
          case '[': {
            ++pos;
            JsonValue arr = JsonValue::array();
            skipSpace();
            if (consume(']')) {
                out = std::move(arr);
                return true;
            }
            for (;;) {
                JsonValue item;
                if (!parseValue(item, depth + 1))
                    return false;
                arr.push(std::move(item));
                skipSpace();
                if (consume(','))
                    continue;
                if (consume(']'))
                    break;
                return fail("expected ',' or ']'");
            }
            out = std::move(arr);
            return true;
          }
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue(std::move(s));
            return true;
          }
          case 't':
            if (!literal("true"))
                return false;
            out = JsonValue(true);
            return true;
          case 'f':
            if (!literal("false"))
                return false;
            out = JsonValue(false);
            return true;
          case 'n':
            if (!literal("null"))
                return false;
            out = JsonValue();
            return true;
          default: return parseNumber(out);
        }
    }
};

/** Shortest decimal that round-trips; integral values print without
 *  a fraction (mirrors obs/prom_export's formatting contract). */
std::string
fmtNumber(double v)
{
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    if (std::strtod(buf, nullptr) != v)
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const Member &m : object_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

JsonValue &
JsonValue::push(JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    array_.push_back(std::move(v));
    return *this;
}

JsonValue &
JsonValue::set(std::string key, JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    for (Member &m : object_) {
        if (m.first == key) {
            m.second = std::move(v);
            return *this;
        }
    }
    object_.emplace_back(std::move(key), std::move(v));
    return *this;
}

std::string
parseJson(std::string_view text, JsonValue &out)
{
    out = JsonValue();
    Parser p{text, 0, {}};
    JsonValue value;
    if (!p.parseValue(value, 0))
        return p.error;
    p.skipSpace();
    if (!p.atEnd()) {
        p.fail("trailing characters after document");
        return p.error;
    }
    out = std::move(value);
    return {};
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

void
writeJson(std::ostream &out, const JsonValue &value)
{
    switch (value.kind()) {
      case JsonValue::Kind::Null: out << "null"; break;
      case JsonValue::Kind::Bool:
        out << (value.asBool() ? "true" : "false");
        break;
      case JsonValue::Kind::Number:
        out << fmtNumber(value.asDouble());
        break;
      case JsonValue::Kind::String:
        out << '"' << jsonEscape(value.asString()) << '"';
        break;
      case JsonValue::Kind::Array: {
        out << '[';
        bool first = true;
        for (const JsonValue &item : value.items()) {
            if (!first)
                out << ", ";
            first = false;
            writeJson(out, item);
        }
        out << ']';
        break;
      }
      case JsonValue::Kind::Object: {
        out << '{';
        bool first = true;
        for (const auto &[key, member] : value.members()) {
            if (!first)
                out << ", ";
            first = false;
            out << '"' << jsonEscape(key) << "\": ";
            writeJson(out, member);
        }
        out << '}';
        break;
      }
    }
}

std::string
jsonToString(const JsonValue &value)
{
    std::ostringstream out;
    writeJson(out, value);
    return out.str();
}

} // namespace coolcmp::svc
