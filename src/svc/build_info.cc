#include "svc/build_info.hh"

#include "linalg/matrix.hh"

#ifndef COOLCMP_GIT_DESCRIBE
#define COOLCMP_GIT_DESCRIBE "unknown"
#endif

namespace coolcmp::svc {

BuildInfo
buildInfo()
{
    BuildInfo info;
    info.version = COOLCMP_GIT_DESCRIBE;
#if defined(__clang__)
    info.compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
    info.compiler = "gcc " __VERSION__;
#else
    info.compiler = "unknown";
#endif
    info.simd = simdTierName(activeSimdTier());
    return info;
}

JsonValue
buildInfoJson()
{
    const BuildInfo info = buildInfo();
    JsonValue out = JsonValue::object();
    out.set("version", JsonValue(info.version));
    out.set("compiler", JsonValue(info.compiler));
    out.set("simd", JsonValue(info.simd));
    return out;
}

} // namespace coolcmp::svc
