/**
 * @file
 * Minimal JSON document model for the sweep service wire format.
 *
 * The daemon speaks a small, fixed schema (see svc/codec.hh), so this
 * is deliberately not a general-purpose JSON library: one value type
 * holding every kind, a strict recursive-descent parser with a depth
 * bound and byte-accurate error positions, and a deterministic writer
 * (objects keep insertion order, numbers render shortest-round-trip)
 * so golden-body tests can compare exact strings. No external
 * dependencies — the container image only guarantees the C++
 * toolchain.
 */

#ifndef COOLCMP_SVC_JSON_HH
#define COOLCMP_SVC_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace coolcmp::svc {

/** One JSON value of any kind. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<JsonValue>;
    using Member = std::pair<std::string, JsonValue>;
    /** Insertion-ordered members: the writer emits exactly this
     *  order, which keeps serialized bodies deterministic. */
    using Object = std::vector<Member>;

    JsonValue() = default;
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(double v) : kind_(Kind::Number), number_(v) {}
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T> &&
                                          !std::is_same_v<T, bool>>>
    JsonValue(T v)
        : kind_(Kind::Number), number_(static_cast<double>(v))
    {
    }
    JsonValue(const char *s) : kind_(Kind::String), string_(s) {}
    JsonValue(std::string s)
        : kind_(Kind::String), string_(std::move(s))
    {
    }

    static JsonValue array() { return ofKind(Kind::Array); }
    static JsonValue object() { return ofKind(Kind::Object); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool(bool fallback = false) const
    {
        return isBool() ? bool_ : fallback;
    }

    double asDouble(double fallback = 0.0) const
    {
        return isNumber() ? number_ : fallback;
    }

    const std::string &asString() const { return string_; }

    const Array &items() const { return array_; }
    const Object &members() const { return object_; }

    /** Object member lookup; null when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Append to an array value (converts a null to an array). */
    JsonValue &push(JsonValue v);

    /** Set an object member, replacing an existing key (converts a
     *  null to an object). */
    JsonValue &set(std::string key, JsonValue v);

  private:
    static JsonValue ofKind(Kind kind)
    {
        JsonValue v;
        v.kind_ = kind;
        return v;
    }

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

/**
 * Parse one JSON document. Strict: the whole input must be consumed
 * (trailing garbage is an error), nesting is bounded, and numbers
 * must be finite.
 *
 * @return empty string on success, else "byte N: what went wrong"
 * (and `out` is left null).
 */
std::string parseJson(std::string_view text, JsonValue &out);

/**
 * Serialize compactly but readably: ": " after keys, ", " between
 * elements, no newlines. Numbers that hold an integral value within
 * 2^53 print as integers; others print with the fewest digits that
 * round-trip.
 */
void writeJson(std::ostream &out, const JsonValue &value);

/** writeJson into a string. */
std::string jsonToString(const JsonValue &value);

/** Escape a string for embedding between JSON quotes. */
std::string jsonEscape(std::string_view s);

} // namespace coolcmp::svc

#endif // COOLCMP_SVC_JSON_HH
