#include "svc/http.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/logging.hh"

namespace coolcmp::svc {

namespace {

/// Poll granularity of every blocking loop; bounds stop() latency.
constexpr int kPollSliceMs = 100;

/// Per-read patience once a request has started arriving.
constexpr int kReadTimeoutMs = 2000;

bool
sendAll(int fd, const char *data, std::size_t size)
{
    std::size_t sent = 0;
    while (sent < size) {
        // MSG_NOSIGNAL: a client hanging up mid-response must not
        // SIGPIPE the daemon.
        const ssize_t n =
            ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t'))
        ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' ||
                     s[e - 1] == '\r'))
        --e;
    return s.substr(b, e - b);
}

/**
 * Wait for fd readability in stop-aware slices. Returns false on
 * timeout, error, or shutdown request.
 */
bool
waitReadable(int fd, int timeoutMs, const std::atomic<bool> *stopping)
{
    int waited = 0;
    while (waited < timeoutMs) {
        if (stopping && stopping->load(std::memory_order_relaxed))
            return false;
        pollfd pfd{fd, POLLIN, 0};
        const int slice = std::min(kPollSliceMs, timeoutMs - waited);
        const int ready = ::poll(&pfd, 1, slice);
        if (ready > 0)
            return (pfd.revents & (POLLIN | POLLHUP)) != 0;
        if (ready < 0 && errno != EINTR)
            return false;
        waited += slice;
    }
    return false;
}

enum class ReadOutcome { Ok, Closed, Timeout, TooLarge, Malformed };

/**
 * Read and parse one request off a (possibly persistent) connection.
 * `firstByteTimeoutMs` is the keep-alive idle budget; once bytes
 * start flowing the shorter per-read patience applies.
 */
ReadOutcome
readRequest(int fd, std::size_t maxBytes, int firstByteTimeoutMs,
            const std::atomic<bool> *stopping, HttpRequest &out)
{
    std::string buf;
    std::size_t headerEnd = std::string::npos;
    bool firstByte = true;
    char chunk[4096];
    while (headerEnd == std::string::npos) {
        if (!waitReadable(fd,
                          firstByte ? firstByteTimeoutMs
                                    : kReadTimeoutMs,
                          stopping))
            return ReadOutcome::Timeout;
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0)
            return firstByte ? ReadOutcome::Closed
                             : ReadOutcome::Malformed;
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            return ReadOutcome::Closed;
        }
        firstByte = false;
        buf.append(chunk, static_cast<std::size_t>(n));
        if (buf.size() > maxBytes)
            return ReadOutcome::TooLarge;
        headerEnd = buf.find("\r\n\r\n");
    }

    // Request line: METHOD SP PATH SP HTTP/1.x
    const std::size_t lineEnd = buf.find("\r\n");
    std::istringstream requestLine(buf.substr(0, lineEnd));
    std::string version;
    if (!(requestLine >> out.method >> out.path >> version) ||
        version.rfind("HTTP/1.", 0) != 0)
        return ReadOutcome::Malformed;

    // Headers.
    std::size_t cursor = lineEnd + 2;
    std::size_t contentLength = 0;
    bool haveLength = false;
    while (cursor < headerEnd) {
        const std::size_t eol = buf.find("\r\n", cursor);
        const std::string line = buf.substr(cursor, eol - cursor);
        cursor = eol + 2;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            return ReadOutcome::Malformed;
        std::string name = toLower(trim(line.substr(0, colon)));
        std::string value = trim(line.substr(colon + 1));
        if (name == "content-length") {
            char *end = nullptr;
            const unsigned long long v =
                std::strtoull(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                return ReadOutcome::Malformed;
            contentLength = static_cast<std::size_t>(v);
            haveLength = true;
        }
        out.headers.emplace_back(std::move(name), std::move(value));
    }

    const std::size_t bodyStart = headerEnd + 4;
    if (haveLength &&
        (contentLength > maxBytes ||
         bodyStart + contentLength > maxBytes))
        return ReadOutcome::TooLarge;
    if (!haveLength && (out.method == "POST" || out.method == "PUT") &&
        buf.size() > bodyStart)
        return ReadOutcome::Malformed; // no chunked support

    while (buf.size() < bodyStart + contentLength) {
        if (!waitReadable(fd, kReadTimeoutMs, stopping))
            return ReadOutcome::Timeout;
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return ReadOutcome::Malformed;
        buf.append(chunk, static_cast<std::size_t>(n));
        if (buf.size() > maxBytes)
            return ReadOutcome::TooLarge;
    }
    out.body = buf.substr(bodyStart, contentLength);
    return ReadOutcome::Ok;
}

/// Payload bytes per chunk when a response opts into chunked
/// framing: big enough to amortize the size-line overhead, small
/// enough that no single send needs a contiguous multi-megabyte
/// buffer beyond the body itself.
constexpr std::size_t kChunkBytes = std::size_t{64} << 10;

std::string
serializeResponse(const HttpResponse &response, bool keepAlive)
{
    std::ostringstream out;
    out << "HTTP/1.1 " << response.status << ' '
        << httpStatusText(response.status) << "\r\n"
        << "Content-Type: " << response.contentType << "\r\n";
    if (response.chunked) {
        out << "Transfer-Encoding: chunked\r\n"
            << "Connection: "
            << (keepAlive ? "keep-alive" : "close") << "\r\n\r\n";
        for (std::size_t off = 0; off < response.body.size();
             off += kChunkBytes) {
            const std::size_t n =
                std::min(kChunkBytes, response.body.size() - off);
            out << std::hex << n << std::dec << "\r\n";
            out.write(response.body.data() +
                          static_cast<std::ptrdiff_t>(off),
                      static_cast<std::streamsize>(n));
            out << "\r\n";
        }
        out << "0\r\n\r\n"; // last chunk, no trailers
    } else {
        out << "Content-Length: " << response.body.size() << "\r\n"
            << "Connection: "
            << (keepAlive ? "keep-alive" : "close") << "\r\n\r\n"
            << response.body;
    }
    return out.str();
}

} // namespace

const std::string *
HttpRequest::header(const std::string &name) const
{
    for (const auto &[key, value] : headers)
        if (key == name)
            return &value;
    return nullptr;
}

const char *
httpStatusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 202: return "Accepted";
      case 204: return "No Content";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 409: return "Conflict";
      case 413: return "Payload Too Large";
      case 429: return "Too Many Requests";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default: return "Unknown";
    }
}

HttpServer::HttpServer(Options options, Handler handler)
    : options_(options), handler_(std::move(handler))
{
}

HttpServer::~HttpServer()
{
    stop();
}

bool
HttpServer::start()
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    if (started_)
        return true;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        warnLimited("svc-http", "cannot create service socket: ",
                    std::strerror(errno));
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        warnLimited("svc-http", "cannot bind service port ",
                    options_.port, ": ", std::strerror(errno));
        ::close(fd);
        return false;
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port_ = ntohs(bound.sin_port);
    else
        port_ = options_.port;

    stopping_.store(false, std::memory_order_relaxed);
    listenFd_ = fd;
    started_ = true;
    acceptThread_ = std::thread([this, fd] { acceptLoop(fd); });
    workers_.reserve(options_.connectionThreads);
    for (std::size_t i = 0; i < options_.connectionThreads; ++i)
        workers_.emplace_back([this] { connectionWorker(); });
    return true;
}

void
HttpServer::stop()
{
    std::thread accept;
    std::vector<std::thread> workers;
    int fd = -1;
    {
        std::lock_guard<std::mutex> lock(lifecycleMutex_);
        if (!started_)
            return;
        started_ = false;
        stopping_.store(true, std::memory_order_relaxed);
        accept = std::move(acceptThread_);
        workers = std::move(workers_);
        fd = listenFd_;
        listenFd_ = -1;
        port_ = 0;
    }
    connAvailable_.notify_all();
    accept.join();
    for (std::thread &worker : workers)
        worker.join();
    if (fd >= 0)
        ::close(fd);
    // Unserved connections left in the hand-off queue get a hard
    // close; their clients see a reset, which is the honest signal
    // during shutdown.
    std::lock_guard<std::mutex> lock(connMutex_);
    for (int pending : pendingConns_)
        ::close(pending);
    pendingConns_.clear();
}

bool
HttpServer::running() const
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    return started_;
}

std::uint16_t
HttpServer::port() const
{
    std::lock_guard<std::mutex> lock(lifecycleMutex_);
    return port_;
}

void
HttpServer::acceptLoop(int listenFd)
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd pfd{listenFd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, kPollSliceMs);
        if (ready <= 0)
            continue;
        const int client = ::accept(listenFd, nullptr, nullptr);
        if (client < 0)
            continue;
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            // Shed rather than buffer unboundedly when every worker
            // is busy and a backlog has already formed.
            if (pendingConns_.size() >=
                2 * options_.connectionThreads) {
                ::close(client);
                continue;
            }
            pendingConns_.push_back(client);
        }
        connAvailable_.notify_one();
    }
}

void
HttpServer::connectionWorker()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(connMutex_);
            connAvailable_.wait(lock, [this] {
                return stopping_.load(std::memory_order_relaxed) ||
                    !pendingConns_.empty();
            });
            if (pendingConns_.empty())
                return; // stopping
            fd = pendingConns_.front();
            pendingConns_.pop_front();
        }
        serveConnection(fd);
        ::close(fd);
    }
}

void
HttpServer::serveConnection(int fd)
{
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    for (;;) {
        HttpRequest request;
        const ReadOutcome outcome =
            readRequest(fd, options_.maxRequestBytes,
                        options_.idleTimeoutMs, &stopping_, request);
        if (outcome == ReadOutcome::Closed ||
            outcome == ReadOutcome::Timeout)
            return;
        if (outcome == ReadOutcome::TooLarge) {
            HttpResponse r;
            r.status = 413;
            r.body = "{\"error\": \"body_too_large\"}";
            const std::string wire = serializeResponse(r, false);
            sendAll(fd, wire.data(), wire.size());
            return;
        }
        if (outcome == ReadOutcome::Malformed) {
            HttpResponse r;
            r.status = 400;
            r.body = "{\"error\": \"malformed_request\"}";
            const std::string wire = serializeResponse(r, false);
            sendAll(fd, wire.data(), wire.size());
            return;
        }

        HttpResponse response;
        try {
            response = handler_(request);
        } catch (const std::exception &e) {
            response.status = 500;
            response.body = std::string(
                               "{\"error\": \"internal\", "
                               "\"message\": \"") +
                e.what() + "\"}";
        }

        const std::string *connection =
            request.header("connection");
        const bool clientCloses =
            connection && toLower(*connection) == "close";
        const bool keepAlive = !clientCloses &&
            !response.closeConnection &&
            !stopping_.load(std::memory_order_relaxed);
        const std::string wire =
            serializeResponse(response, keepAlive);
        if (!sendAll(fd, wire.data(), wire.size()) || !keepAlive)
            return;
    }
}

HttpClient::HttpClient(std::string host, std::uint16_t port)
    : host_(std::move(host)), port_(port)
{
}

HttpClient::~HttpClient()
{
    disconnect();
}

bool
HttpClient::ensureConnected()
{
    if (fd_ >= 0)
        return true;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    fd_ = fd;
    return true;
}

void
HttpClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
HttpClient::readResponse(HttpResponse &out, bool &serverCloses)
{
    std::string buf;
    char chunk[4096];
    std::size_t headerEnd = std::string::npos;
    while (headerEnd == std::string::npos) {
        if (!waitReadable(fd_, 30000, nullptr))
            return false;
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return false;
        buf.append(chunk, static_cast<std::size_t>(n));
        headerEnd = buf.find("\r\n\r\n");
    }
    const std::size_t lineEnd = buf.find("\r\n");
    std::istringstream statusLine(buf.substr(0, lineEnd));
    std::string version;
    int status = 0;
    if (!(statusLine >> version >> status))
        return false;

    std::size_t cursor = lineEnd + 2;
    std::size_t contentLength = 0;
    bool chunked = false;
    serverCloses = false;
    while (cursor < headerEnd) {
        const std::size_t eol = buf.find("\r\n", cursor);
        const std::string line = buf.substr(cursor, eol - cursor);
        cursor = eol + 2;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        const std::string name = toLower(trim(line.substr(0, colon)));
        const std::string value = trim(line.substr(colon + 1));
        if (name == "content-length")
            contentLength = static_cast<std::size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        else if (name == "transfer-encoding" &&
                 toLower(value) == "chunked")
            chunked = true;
        else if (name == "connection" && toLower(value) == "close")
            serverCloses = true;
        else if (name == "content-type")
            out.contentType = value;
    }

    // Pull more bytes until `buf` reaches `need` characters.
    auto fill = [&](std::size_t need) -> bool {
        while (buf.size() < need) {
            if (!waitReadable(fd_, 30000, nullptr))
                return false;
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return false;
            buf.append(chunk, static_cast<std::size_t>(n));
        }
        return true;
    };
    // Ensure a "\r\n" exists at or after `from`; returns its offset
    // or npos on transport failure.
    auto fillLine = [&](std::size_t from) -> std::size_t {
        for (;;) {
            const std::size_t eol = buf.find("\r\n", from);
            if (eol != std::string::npos)
                return eol;
            if (!fill(buf.size() + 1))
                return std::string::npos;
        }
    };

    std::size_t bodyStart = headerEnd + 4;
    out.body.clear();
    if (chunked) {
        // Dechunk: <hex-size>\r\n <payload> \r\n ... 0\r\n [trailers]
        // \r\n. Trailers are tolerated and discarded.
        for (;;) {
            const std::size_t eol = fillLine(bodyStart);
            if (eol == std::string::npos)
                return false;
            char *end = nullptr;
            const std::string sizeLine =
                trim(buf.substr(bodyStart, eol - bodyStart));
            const unsigned long long size =
                std::strtoull(sizeLine.c_str(), &end, 16);
            if (end == sizeLine.c_str())
                return false;
            bodyStart = eol + 2;
            if (size == 0)
                break;
            if (!fill(bodyStart + size + 2))
                return false;
            out.body.append(buf, bodyStart,
                            static_cast<std::size_t>(size));
            bodyStart += static_cast<std::size_t>(size) + 2;
        }
        for (;;) { // optional trailer lines, then the blank line
            const std::size_t eol = fillLine(bodyStart);
            if (eol == std::string::npos)
                return false;
            const bool blank = eol == bodyStart;
            bodyStart = eol + 2;
            if (blank)
                break;
        }
    } else {
        if (!fill(bodyStart + contentLength))
            return false;
        out.body = buf.substr(bodyStart, contentLength);
    }
    out.status = status;
    return true;
}

bool
HttpClient::request(
    const std::string &method, const std::string &path,
    const std::string &body, HttpResponse &out,
    const std::vector<std::pair<std::string, std::string>> &headers)
{
    // One transparent retry, but only when the failure happened on a
    // REUSED keep-alive connection: the server may have closed it
    // while idle (ECONNRESET/EOF on reuse), and a fresh connect
    // distinguishes "server gone" from "stale socket". A failure on
    // a just-opened connection is a real transport error and is
    // surfaced immediately — retrying it could double-deliver a POST
    // to a server that died mid-response.
    for (int attempt = 0; attempt < 2; ++attempt) {
        const bool reused = fd_ >= 0;
        if (!ensureConnected())
            return false;
        std::ostringstream wire;
        wire << method << ' ' << path << " HTTP/1.1\r\n"
             << "Host: " << host_ << "\r\n";
        for (const auto &[name, value] : headers)
            wire << name << ": " << value << "\r\n";
        wire << "Content-Length: " << body.size() << "\r\n\r\n"
             << body;
        const std::string text = wire.str();
        bool serverCloses = false;
        if (sendAll(fd_, text.data(), text.size()) &&
            readResponse(out, serverCloses)) {
            if (serverCloses)
                disconnect();
            return true;
        }
        disconnect();
        if (!reused)
            return false;
    }
    return false;
}

} // namespace coolcmp::svc
