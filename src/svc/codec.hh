/**
 * @file
 * Wire codec for the sweep service: the existing fluent RunRequest /
 * SweepOptions API rendered as JSON, so the daemon's wire schema IS
 * the in-process API rather than a parallel one that can drift.
 *
 * Request bodies parse into a WireSweep (client identity + priority +
 * a RunRequest); the same struct serializes back byte-identically, so
 * serialize -> parse -> serialize is the codec's round-trip contract
 * (tested against golden bodies). Result payloads reuse the v4
 * result-cache body format (writeRunMetricsBody / readRunMetricsBody
 * from core/sweep_journal.hh) embedded as a JSON string: a service
 * client deserializes the exact bytes the on-disk cache would hold,
 * which is what makes "same configKey => bit-identical RunMetrics"
 * checkable over the wire.
 *
 * Server-side paths (result cache directory, resume journal) are
 * deliberately NOT part of the wire schema: clients must not steer
 * daemon filesystem writes.
 */

#ifndef COOLCMP_SVC_CODEC_HH
#define COOLCMP_SVC_CODEC_HH

#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/metrics.hh"
#include "obs/snapshot.hh"
#include "obs/trace_context.hh"
#include "svc/json.hh"

namespace coolcmp::svc {

/** One POST /v1/sweeps body: who is asking, how urgently, and the
 *  sweep itself. */
struct WireSweep
{
    std::string client = "anonymous";
    int priority = 0;
    RunRequest request;
};

/**
 * Decode a parsed JSON document into a WireSweep. Schema:
 *
 *   {
 *     "schema_version": 2,             // optional; absent means 1
 *     "client": "tenant-a",            // optional
 *     "priority": 1,                   // optional, higher runs first
 *     "jobs": [
 *       {"workload": "workload7",      // Table 4 name, or instead:
 *        "benchmarks": ["gzip", ...],  // 1..64 SPEC2000 names
 *        "policy": {"mechanism": "dvfs" | "stop-go",
 *                   "scope": "distributed" | "global",
 *                   "migration": "none" | "counter" | "sensor"}}
 *     ],
 *     "options": {"threads": 2, "timeout_s": 30.0,
 *                 "max_attempts": 2, "backoff_s": 0.05,
 *                 "rom_tolerance": -1,
 *                 "floorplan": "mesh16"}        // all optional
 *   }
 *
 * "floorplan" is a generator name (paper4, mesh16, mesh64,
 * biglittle4+4, stacked3d2x16) or inline FloorplanSpec text; it is
 * validated semantically by SweepOptions::validate(), not here. A
 * schema_version the decoder does not understand is rejected with a
 * message starting "unsupported schema_version", which the daemon
 * maps to the bad_schema_version error code.
 *
 * Unknown keys are ignored (forward compatibility). Lookups are
 * non-fatal: an unknown workload, benchmark, or enum token is a
 * decode error, never a process abort.
 *
 * @return empty on success, else a diagnostic suitable for an HTTP
 * 400 "message" field. Note RunRequest::validate() is NOT called
 * here — the daemon maps that separately so decode errors and
 * semantic-validation errors are distinguishable.
 */
std::string parseSweepRequest(const JsonValue &root, WireSweep &out);

/** Encode a WireSweep as the schema parseSweepRequest accepts. */
JsonValue sweepRequestToJson(const WireSweep &sweep);

/** RunMetrics -> the v4 result-cache body text (header-less). */
std::string runMetricsToBody(const RunMetrics &m);

/** Parse a v4 cache body produced by runMetricsToBody; false on
 *  malformed input. */
bool runMetricsFromBody(const std::string &body, RunMetrics &m);

// --- Telemetry wire forms (span shipping + metrics federation).
//     These live here rather than in obs because obs sits below the
//     service layer and must not know about JSON wire schemas. ---

/** One span as its wire object: hex ids + name/start/dur/job. */
JsonValue spanToJson(const obs::Span &span);

/** Decode one wire span; false on missing/malformed fields. */
bool spanFromJson(const JsonValue &v, obs::Span &out);

/** Encode a batch of spans as a JSON array. */
JsonValue spansToJson(const std::vector<obs::Span> &spans);

/** Decode a wire span array, skipping malformed elements. */
std::vector<obs::Span> spansFromJson(const JsonValue &v);

/** Counters + gauges of a snapshot as `{"counters": {...},
 *  "gauges": {...}}` — the federation payload workers push with
 *  results and heartbeats. Histograms stay process-local. */
JsonValue metricsSnapshotToJson(const obs::MetricsSnapshot &snap);

/** Decode a federation payload (missing sections decode empty). */
void metricsSnapshotFromJson(const JsonValue &v,
                             obs::MetricsSnapshot &out);

/** Canonical policy tokens ("dvfs", "distributed", "sensor", ...)
 *  used by the wire schema; the inverse of the parse mapping. */
std::string mechanismToken(ThrottleMechanism mechanism);
std::string scopeToken(ControlScope scope);
std::string migrationToken(MigrationKind kind);

} // namespace coolcmp::svc

#endif // COOLCMP_SVC_CODEC_HH
