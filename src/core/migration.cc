#include "core/migration.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "obs/tracer.hh"
#include "util/logging.hh"

namespace coolcmp {

void
MigrationPolicy::traceDecision(const MigrationObservation &obs,
                               const std::vector<int> &before,
                               const std::vector<int> &proposed,
                               bool exploratory) const
{
    if (!tracer_)
        return;
    std::vector<double> temps;
    std::vector<int> units;
    temps.reserve(obs.cores.size());
    units.reserve(obs.cores.size());
    for (const CoreHotspotState &core : obs.cores) {
        temps.push_back(core.criticalTemp);
        units.push_back(core.criticalUnit == UnitKind::FpRF ? 1 : 0);
    }
    tracer_->migrationDecision(obs.now, before, proposed, temps, units,
                               exploratory);
}

std::vector<int>
decideAssignment(const std::vector<CoreHotspotState> &cores,
                 const IntensityFn &intensity, double keepMargin)
{
    const std::size_t n = cores.size();

    // (1) remaining processes = processes[]
    std::vector<int> remaining;
    remaining.reserve(n);
    for (const auto &core : cores)
        remaining.push_back(core.process);

    // (2) sort cores by most hotspot imbalance.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return cores[a].imbalance() >
                             cores[b].imbalance();
                     });

    // (3) foreach core in order: match the least-intense remaining
    // process against the core's critical hotspot.
    std::vector<int> assignment(n, -1);
    for (std::size_t rank = 0; rank < n; ++rank) {
        const std::size_t c = order[rank];
        const UnitKind critical = cores[c].criticalUnit;
        std::size_t bestIdx = 0;
        double bestIntensity = 0.0;
        std::ptrdiff_t currentIdx = -1;
        for (std::size_t i = 0; i < remaining.size(); ++i) {
            if (remaining[i] == cores[c].process)
                currentIdx = static_cast<std::ptrdiff_t>(i);
            const double heat = intensity(
                remaining[i], static_cast<int>(c), critical);
            if (i == 0 || heat < bestIntensity) {
                bestIntensity = heat;
                bestIdx = i;
            }
        }
        // Stickiness: keep the incumbent unless the winner is clearly
        // less intense on the critical hotspot.
        if (currentIdx >= 0 &&
            remaining[static_cast<std::size_t>(currentIdx)] !=
                remaining[bestIdx]) {
            const double currentHeat = intensity(
                cores[c].process, static_cast<int>(c), critical);
            if (currentHeat <=
                bestIntensity * (1.0 + keepMargin) + 1e-12) {
                bestIdx = static_cast<std::size_t>(currentIdx);
            }
        }
        assignment[c] = remaining[bestIdx];
        remaining.erase(remaining.begin() +
                        static_cast<std::ptrdiff_t>(bestIdx));
    }
    return assignment;
}

void
NoMigrationPolicy::onTick(const MigrationObservation &, OsKernel &)
{
}

MigrationTrigger::MigrationTrigger(int numCores, int quorum,
                                   double fallbackSpread,
                                   double tempDelta)
    : quorum_(quorum), fallbackSpread_(fallbackSpread),
      tempDelta_(tempDelta),
      lastCritical_(static_cast<std::size_t>(numCores), UnitKind::IntRF),
      decisionTemp_(static_cast<std::size_t>(numCores), 0.0),
      changed_(static_cast<std::size_t>(numCores), false)
{
}

bool
MigrationTrigger::shouldDecide(const MigrationObservation &obs,
                               const OsKernel &kernel)
{
    if (!primed_) {
        acknowledge(obs);
        primed_ = true;
        return false;
    }

    // Hotspot-change signals arrive asynchronously from the per-core
    // controllers and latch until the next decision round. A core
    // signals either when the identity of its critical hotspot flips
    // or when that hotspot has moved materially since the last round.
    for (std::size_t c = 0; c < obs.cores.size(); ++c) {
        if (obs.cores[c].criticalUnit != lastCritical_[c])
            changed_[c] = true;
        if (std::abs(obs.cores[c].criticalTemp - decisionTemp_[c]) >
            tempDelta_)
            changed_[c] = true;
        lastCritical_[c] = obs.cores[c].criticalUnit;
    }

    if (!kernel.migrationAllowed(obs.now))
        return false;

    int changed = 0;
    for (std::size_t c = 0; c < obs.cores.size(); ++c)
        if (changed_[c])
            ++changed;
    if (changed >= quorum_)
        return true;

    // Fallback: a large thermal imbalance alone does not justify a
    // migration round unless some core is actually starved -- inside a
    // stop-go stall or throttled deep into the DVFS range. Without
    // this gate, workloads whose critical units never flip would churn
    // every 10 ms for near-zero-sum swaps (migration on top of
    // well-regulated distributed DVFS is close to work-neutral, and
    // each PLL relock and context switch costs real time).
    double hottest = -1e9;
    double coolest = 1e9;
    bool starved = false;
    for (std::size_t c = 0; c < obs.cores.size(); ++c) {
        hottest = std::max(hottest, obs.cores[c].criticalTemp);
        coolest = std::min(coolest, obs.cores[c].criticalTemp);
        if (obs.execShare[c] < 0.7)
            starved = true;
    }
    return starved && hottest - coolest > fallbackSpread_;
}

void
MigrationTrigger::acknowledge(const MigrationObservation &obs)
{
    for (std::size_t c = 0; c < obs.cores.size(); ++c) {
        lastCritical_[c] = obs.cores[c].criticalUnit;
        decisionTemp_[c] = obs.cores[c].criticalTemp;
        changed_[c] = false;
    }
}

CounterMigrationPolicy::CounterMigrationPolicy(int numCores,
                                               const DtmConfig &config)
    : trigger_(numCores, config.hotspotChangeQuorum,
               config.fallbackSpread, config.hotspotTempDelta)
{
    tracer_ = config.tracer;
}

void
CounterMigrationPolicy::onTick(const MigrationObservation &obs,
                               OsKernel &kernel)
{
    if (!trigger_.shouldDecide(obs, kernel))
        return;
    ++decisions_;
    trigger_.acknowledge(obs);

    // Intensity from hardware counters: register-file accesses per
    // adjusted cycle (already frequency-independent, Section 6.1).
    auto intensity = [&kernel](int process, int /*core*/,
                               UnitKind unit) {
        const PerfCounters &counters =
            kernel.process(process).counters();
        return unit == UnitKind::FpRF ? counters.fpRfPerCycle()
                                      : counters.intRfPerCycle();
    };
    const std::vector<int> assignment =
        decideAssignment(obs.cores, intensity);
    traceDecision(obs, kernel.assignment(), assignment, false);
    kernel.migrate(assignment, obs.now);
}

ThermalTrendTable::ThermalTrendTable(int numProcesses, int numCores)
    : numProcesses_(numProcesses), numCores_(numCores),
      cells_(static_cast<std::size_t>(numProcesses) *
             static_cast<std::size_t>(numCores) * 2)
{
    if (numProcesses <= 0 || numCores <= 0)
        fatal("thermal trend table needs processes and cores");
}

const ThermalTrendTable::Cell &
ThermalTrendTable::cell(int process, int core, UnitKind unit) const
{
    const std::size_t u = unit == UnitKind::FpRF ? 1 : 0;
    return cells_[(static_cast<std::size_t>(process) *
                       static_cast<std::size_t>(numCores_) +
                   static_cast<std::size_t>(core)) *
                      2 +
                  u];
}

ThermalTrendTable::Cell &
ThermalTrendTable::cell(int process, int core, UnitKind unit)
{
    return const_cast<Cell &>(
        std::as_const(*this).cell(process, core, unit));
}

void
ThermalTrendTable::record(int process, int core, UnitKind unit,
                          double slope, double weight)
{
    if (weight <= 0.0)
        return;
    Cell &c = cell(process, core, unit);
    c.sum += slope * weight;
    c.weight += weight;
}

bool
ThermalTrendTable::hasData(int process, int core) const
{
    return cell(process, core, UnitKind::IntRF).filled() ||
        cell(process, core, UnitKind::FpRF).filled();
}

bool
ThermalTrendTable::sufficient() const
{
    // Every thread profiled somewhere.
    for (int p = 0; p < numProcesses_; ++p) {
        bool any = false;
        for (int c = 0; c < numCores_; ++c)
            any = any || hasData(p, c);
        if (!any)
            return false;
    }
    // Every core tested with at least two threads.
    for (int c = 0; c < numCores_; ++c) {
        int threads = 0;
        for (int p = 0; p < numProcesses_; ++p)
            if (hasData(p, c))
                ++threads;
        if (threads < 2)
            return false;
    }
    return true;
}

double
ThermalTrendTable::threadMean(int process, UnitKind unit) const
{
    double sum = 0.0;
    double weight = 0.0;
    for (int c = 0; c < numCores_; ++c) {
        const Cell &cl = cell(process, c, unit);
        sum += cl.sum;
        weight += cl.weight;
    }
    return weight > 0.0 ? sum / weight : 0.0;
}

double
ThermalTrendTable::coreOffset(int core, UnitKind unit) const
{
    // Mean residual of recorded threads on this core relative to their
    // own across-core means: captures systematic per-core effects such
    // as sitting next to the cool L2 or at the die edge.
    double residual = 0.0;
    int count = 0;
    for (int p = 0; p < numProcesses_; ++p) {
        const Cell &cl = cell(p, core, unit);
        if (!cl.filled())
            continue;
        residual += cl.mean() - threadMean(p, unit);
        ++count;
    }
    return count > 0 ? residual / count : 0.0;
}

double
ThermalTrendTable::estimate(int process, int core, UnitKind unit) const
{
    const Cell &cl = cell(process, core, unit);
    if (cl.filled())
        return cl.mean();
    return threadMean(process, unit) + coreOffset(core, unit);
}

SensorMigrationPolicy::SensorMigrationPolicy(int numProcesses,
                                             int numCores,
                                             const DtmConfig &config)
    : trigger_(numCores, config.hotspotChangeQuorum,
               config.fallbackSpread, config.hotspotTempDelta),
      table_(numProcesses, numCores)
{
    tracer_ = config.tracer;
}

void
SensorMigrationPolicy::onTick(const MigrationObservation &obs,
                              OsKernel &kernel)
{
    // Record trends continuously (Figure 6, left path): slopes are
    // de-scaled by the cubed frequency factor dumped by the inner PI
    // loop so that samples taken at different speeds are comparable.
    for (std::size_t c = 0; c < obs.cores.size(); ++c) {
        if (obs.execShare[c] < minExecShare_)
            continue; // stalled cores carry no thermal signal
        const int process = obs.cores[c].process;
        if (process < 0)
            continue;
        const double descale =
            obs.freqCubed[c] > 1e-6 ? 1.0 / obs.freqCubed[c] : 0.0;
        if (descale == 0.0)
            continue;
        const double weight = obs.execShare[c];
        table_.record(process, static_cast<int>(c), UnitKind::IntRF,
                      obs.intRfSlope[c] * descale, weight);
        table_.record(process, static_cast<int>(c), UnitKind::FpRF,
                      obs.fpRfSlope[c] * descale, weight);
    }

    if (!trigger_.shouldDecide(obs, kernel))
        return;
    ++decisions_;
    trigger_.acknowledge(obs);

    if (!table_.sufficient()) {
        // Figure 6: not enough profiled data -> set migration targets
        // to profile more (rotate threads across cores).
        const std::vector<int> &current = kernel.assignment();
        std::vector<int> rotated(current.size());
        for (std::size_t c = 0; c < current.size(); ++c)
            rotated[c] = current[(c + 1) % current.size()];
        traceDecision(obs, current, rotated, true);
        if (kernel.migrate(rotated, obs.now) > 0)
            ++exploreRounds_;
        return;
    }

    auto intensity = [this](int process, int core, UnitKind unit) {
        return table_.estimate(process, core, unit);
    };
    const std::vector<int> assignment =
        decideAssignment(obs.cores, intensity);
    traceDecision(obs, kernel.assignment(), assignment, false);
    kernel.migrate(assignment, obs.now);
}

std::unique_ptr<MigrationPolicy>
makeMigrationPolicy(MigrationKind kind, int numProcesses, int numCores,
                    const DtmConfig &config)
{
    switch (kind) {
      case MigrationKind::None:
        return std::make_unique<NoMigrationPolicy>();
      case MigrationKind::CounterBased:
        return std::make_unique<CounterMigrationPolicy>(numCores,
                                                        config);
      case MigrationKind::SensorBased:
        return std::make_unique<SensorMigrationPolicy>(numProcesses,
                                                       numCores, config);
    }
    panic("unknown migration kind");
}

} // namespace coolcmp
