#include "core/dtm_simulator.hh"

#include <algorithm>
#include <cmath>

#include "obs/registry.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace coolcmp {

DtmSimulator::DtmSimulator(
    std::shared_ptr<const ChipModel> chip, const PolicyConfig &policy,
    const DtmConfig &config,
    std::vector<std::shared_ptr<const PowerTrace>> traces)
    : chip_(std::move(chip)), policy_(policy), config_(config),
      throttles_(policy.mechanism, policy.scope, chip_->numCores(),
                 config_),
      solver_(chip_->makeSolver(config_.stepSeconds(),
                                config_.romTolerance)),
      sensors_(makeRegisterFileSensors(chip_->floorplan(),
                                       config_.sensors)),
      l2IdleWatts_(config_.power.units[UnitKind::L2].idleWatts)
{
    if (traces.size() < static_cast<std::size_t>(chip_->numCores()))
        fatal("need at least one process per core");
    const auto nc = static_cast<std::size_t>(chip_->numCores());
    corePowerScale_.resize(nc);
    coreFreqCap_.resize(nc);
    for (std::size_t c = 0; c < nc; ++c) {
        const CoreSpec &cs = chip_->coreSpec(static_cast<int>(c));
        corePowerScale_[c] = cs.powerScale;
        coreFreqCap_[c] = cs.maxFreqScale;
    }
    // One tracer pointer on the config fans out to every layer: the
    // throttle bank and migration policy read config_.tracer directly;
    // the kernel gets it through its params.
    config_.kernel.tracer = config_.tracer;
    // The fault layer exists only when something is scheduled to go
    // wrong; a clean config keeps the exact fault-free hot path.
    if (!config_.faults.empty()) {
        injector_ = std::make_unique<FaultInjector>(
            config_.faults, chip_->numCores(), config_.registry,
            config_.tracer);
        throttles_.setFaultInjector(injector_.get());
    }
    std::vector<Process> processes;
    processes.reserve(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i)
        processes.emplace_back(static_cast<int>(i), traces[i]);
    kernel_ = std::make_unique<OsKernel>(
        chip_->numCores(), std::move(processes), config_.kernel);
    migration_ = makeMigrationPolicy(
        policy_.migration, static_cast<int>(traces.size()),
        chip_->numCores(), config_);
    initializeThermalState();
}

void
DtmSimulator::setSampleHook(std::function<void(const StepSample &)> hook,
                            std::uint64_t stride)
{
    hook_ = std::move(hook);
    hookStride_ = std::max<std::uint64_t>(stride, 1);
}

Vector
DtmSimulator::averageBlockPowers() const
{
    const Floorplan &plan = chip_->floorplan();
    Vector powers(plan.numBlocks(), 0.0);
    powers[chip_->l2Block()] = l2IdleWatts_;
    for (int c = 0; c < chip_->numCores(); ++c) {
        const Process *proc = kernel_->runningOn(c);
        if (!proc)
            continue;
        // The per-trace mean is precomputed at trace-build time, so
        // simulator construction no longer rescans every trace point
        // for every core (O(trace * cores) per job in sweeps).
        const PerUnit<double> avg =
            proc->trace().averageUnitPower();
        const double ps =
            corePowerScale_[static_cast<std::size_t>(c)];
        for (UnitKind kind : coreUnitKinds())
            powers[chip_->blockOf(c, kind)] += avg[kind] * ps;
        powers[chip_->l2Block()] +=
            std::max(0.0, avg[UnitKind::L2] - l2IdleWatts_) * ps;
    }
    return powers;
}

void
DtmSimulator::initializeThermalState()
{
    // Start the run at the steady state of the workload's average
    // power, scaled so the hottest block sits initMargin below the
    // threshold: the long-run operating point an ideal regulator would
    // hold (the heatsink moves far too slowly to re-equilibrate within
    // the simulated 0.5 s, so the initial point matters and must be a
    // plausible one).
    const Vector dynAvg = averageBlockPowers();
    const RcNetwork &net = chip_->network();
    const double target =
        config_.thresholdTemp - config_.initMargin - net.ambient();

    double alpha = 1.0;
    Vector temps;
    for (int iter = 0; iter < 12; ++iter) {
        Vector powers = dynAvg;
        for (auto &p : powers)
            p *= alpha;
        if (!temps.empty()) {
            // Leakage at the current temperature estimate (full Vdd:
            // the regulated mix of speeds is not known yet, and
            // leakage is a secondary correction here).
            chip_->leakage().addLeakage(
                temps, [&](std::size_t) {
                    return config_.power.nominalVdd;
                },
                powers);
        }
        temps = net.steadyState(powers);
        double hottest = -1e9;
        for (std::size_t b = 0; b < net.numInputs(); ++b)
            hottest = std::max(hottest, temps[b] - net.ambient());
        if (hottest <= 0.0)
            break;
        const double ratio = target / hottest;
        alpha *= std::clamp(ratio, 0.2, 2.0);
        alpha = std::clamp(alpha, 0.01, 1.0);
        if (std::abs(ratio - 1.0) < 0.01)
            break;
    }
    solver_->setTemperatures(temps);
    // Wind the DVFS controllers to the regulated operating point:
    // dynamic power scales cubically, so the sustainable fraction
    // alpha corresponds to a frequency scale of alpha^(1/3).
    throttles_.initializeScale(std::cbrt(alpha));
}

void
DtmSimulator::beginRun()
{
    const bool timed = config_.registry != nullptr;
    const auto t0 = timed ? obs::PhaseProfile::Clock::now()
                          : obs::PhaseProfile::Clock::time_point{};
    const auto nc = static_cast<std::size_t>(chip_->numCores());
    RunState &rs = run_;
    rs = RunState{};
    rs.dt = config_.stepSeconds();
    rs.cyclesPerStep = static_cast<double>(config_.intervalCycles);
    rs.steps = config_.numSteps();

    rs.metrics.duration = static_cast<double>(rs.steps) * rs.dt;
    rs.metrics.coreInstructions.assign(nc, 0.0);
    rs.metrics.coreDuty.assign(nc, 0.0);
    rs.metrics.coreMeanFreq.assign(nc, 0.0);
    rs.metrics.processInstructions.assign(kernel_->numProcesses(),
                                          0.0);

    // Observability handles, resolved once so the hot loop updates
    // lock-free shards (or skips on one null check when detached).
    rs.tracer = config_.tracer;
    if (obs::Registry *reg = config_.registry) {
        rs.stepCounter = &reg->counter("sim.steps");
        rs.emergencyCounter = &reg->counter("sim.emergencies");
        rs.tempHist = &reg->histogram(
            "sim.max_block_temp_c",
            obs::Histogram::linearEdges(40.0, 100.0, 120));
    }

    rs.blockPowers.assign(chip_->floorplan().numBlocks(), 0.0);
    rs.coreHottest.assign(nc, 0.0);
    rs.intRf.assign(nc, 0.0);
    rs.fpRf.assign(nc, 0.0);
    if (injector_) {
        injector_->reset();
        rs.intHealthy.assign(nc, 1);
        rs.fpHealthy.assign(nc, 1);
    }

    // OS-tick window accumulators for the outer loop.
    rs.tick = config_.kernel.timerInterval;
    rs.nextTick = rs.tick;
    rs.tickStartIntRf.assign(nc, 0.0);
    rs.tickStartFpRf.assign(nc, 0.0);
    rs.winFreqCubed.assign(nc, 0.0);
    rs.winAvail.assign(nc, 0.0);
    rs.active = true;

    if (timed) {
        rs.profile = &rs.profileSlots;
        rs.profile->add(obs::Phase::BeginRun,
                        std::chrono::duration<double>(
                            obs::PhaseProfile::Clock::now() - t0)
                            .count());
    }
}

const Vector &
DtmSimulator::gatherPowers()
{
    RunState &rs = run_;
    if (!rs.active)
        panic("gatherPowers() outside beginRun()/finishRun()");
    obs::ScopedPhase timer(rs.profile, obs::Phase::GatherPowers);
    const int numCores = chip_->numCores();
    const double dt = rs.dt;
    const double now = static_cast<double>(rs.step) * dt;
    kernel_->advanceTo(now);
    if (injector_)
        injector_->beginStep(now);

    // --- Execute one interval on each core. ---
    std::fill(rs.blockPowers.begin(), rs.blockPowers.end(), 0.0);
    double l2Power = l2IdleWatts_;
    for (int c = 0; c < numCores; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        Process *proc = kernel_->runningOn(c);
        // The spec's frequency cap is the core's DVFS ceiling: a
        // little core at cap 0.6 executes and dissipates as if the
        // chip-wide controller output were scaled by 0.6.
        const double s = throttles_.freqScale(c) * coreFreqCap_[ci];
        const double blockedUntil = std::max(
            throttles_.unavailableUntil(c),
            kernel_->frozenUntil(c));
        const double blocked =
            std::clamp(blockedUntil - now, 0.0, dt);
        const double avail = 1.0 - blocked / dt;
        const double s3 = s * s * s;

        if (proc && avail > 0.0) {
            const TracePoint &pt = proc->currentPoint();
            const double insts =
                proc->advance(s * avail * rs.cyclesPerStep);
            rs.metrics.coreInstructions[ci] += insts;
            rs.metrics.processInstructions[static_cast<std::size_t>(
                proc->id())] += insts;
            rs.metrics.totalInstructions += insts;
            // PowerSpike corruption scales the core's dynamic power
            // (its unit blocks and its share of L2 access power);
            // committed instructions are untouched — the trace lied
            // about power, not about work done.
            const double spike = injector_
                ? injector_->powerScale(c, now) : 1.0;
            const double w = s3 * avail * spike * corePowerScale_[ci];
            for (UnitKind kind : coreUnitKinds())
                rs.blockPowers[chip_->blockOf(c, kind)] +=
                    pt.power[kind] * w;
            l2Power += std::max(0.0, pt.power[UnitKind::L2] -
                                         l2IdleWatts_) *
                w;
        }
        const double work = s * avail;
        rs.metrics.coreDuty[ci] += work;
        rs.metrics.coreMeanFreq[ci] += s;
        rs.winFreqCubed[ci] += s3 * avail;
        rs.winAvail[ci] += avail;
    }
    rs.blockPowers[chip_->l2Block()] += l2Power;

    // --- Close the leakage loop at the step's start state. ---
    // blockTemperatures() instead of temperatures(): leakage only
    // reads die-node entries (block b's node is b), and a reduced
    // solver materializes just those instead of all n nodes.
    chip_->leakage().addLeakage(
        solver_->blockTemperatures(),
        [&](std::size_t block) {
            const int core =
                chip_->floorplan().blocks()[block].core;
            const double vs = core >= 0
                ? throttles_.voltageScale(core) : 1.0;
            return config_.power.nominalVdd * vs;
        },
        rs.blockPowers);

    return rs.blockPowers;
}

void
DtmSimulator::stepThermal()
{
    // --- Advance the thermal state by one exact step. ---
    obs::ScopedPhase timer(run_.profile, obs::Phase::StepThermal);
    solver_->step(run_.blockPowers, run_.dt);
}

void
DtmSimulator::finishStep()
{
    RunState &rs = run_;
    obs::ScopedPhase timer(rs.profile, obs::Phase::FinishStep);
    const int numCores = chip_->numCores();
    const auto nc = static_cast<std::size_t>(numCores);
    const double dt = rs.dt;
    const double now = static_cast<double>(rs.step) * dt;
    const double tEnd = now + dt;

    // --- Read sensors and run the inner control loop. ---
    if (!injector_) {
        for (int c = 0; c < numCores; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            rs.intRf[ci] = sensors_[ci].intRf.read(*solver_);
            rs.fpRf[ci] = sensors_[ci].fpRf.read(*solver_);
            rs.coreHottest[ci] =
                std::max(rs.intRf[ci], rs.fpRf[ci]);
        }
    } else {
        // Pass 1: every diode sample goes through the fault layer.
        // Corrupted values stay in intRf/fpRf — that is what the
        // hardware would report — while the health flags drive the
        // degradation ladder below.
        for (int c = 0; c < numCores; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            const FaultInjector::Reading ir =
                injector_->transformReading(
                    c, 0, sensors_[ci].intRf.read(*solver_), now);
            const FaultInjector::Reading fr =
                injector_->transformReading(
                    c, 1, sensors_[ci].fpRf.read(*solver_), now);
            rs.intRf[ci] = ir.value;
            rs.fpRf[ci] = fr.value;
            rs.intHealthy[ci] = ir.healthy ? 1 : 0;
            rs.fpHealthy[ci] = fr.healthy ? 1 : 0;
        }
        // Chip-wide hottest healthy diode, the third ladder rung.
        double chipHealthyMax = 0.0;
        bool anyHealthy = false;
        for (int c = 0; c < numCores; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            if (rs.intHealthy[ci]) {
                chipHealthyMax = anyHealthy
                    ? std::max(chipHealthyMax, rs.intRf[ci])
                    : rs.intRf[ci];
                anyHealthy = true;
            }
            if (rs.fpHealthy[ci]) {
                chipHealthyMax = anyHealthy
                    ? std::max(chipHealthyMax, rs.fpRf[ci])
                    : rs.fpRf[ci];
                anyHealthy = true;
            }
        }
        // Pass 2: the degradation ladder picks what each core's
        // controller sees: own diodes -> sibling diode -> chip-wide
        // hottest healthy -> fail-safe (feed the threshold itself so
        // stop-go trips every sample and DVFS pins the floor).
        for (int c = 0; c < numCores; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            SensorSource source;
            if (rs.intHealthy[ci] && rs.fpHealthy[ci]) {
                source = SensorSource::Own;
                rs.coreHottest[ci] =
                    std::max(rs.intRf[ci], rs.fpRf[ci]);
            } else if (rs.intHealthy[ci]) {
                source = SensorSource::Sibling;
                rs.coreHottest[ci] = rs.intRf[ci];
            } else if (rs.fpHealthy[ci]) {
                source = SensorSource::Sibling;
                rs.coreHottest[ci] = rs.fpRf[ci];
            } else if (anyHealthy) {
                source = SensorSource::ChipWide;
                rs.coreHottest[ci] = chipHealthyMax;
            } else {
                source = SensorSource::FailSafe;
                rs.coreHottest[ci] = config_.thresholdTemp;
            }
            injector_->noteSensorSource(c, source, now);
        }
    }
    throttles_.update(rs.coreHottest, tEnd);

    const double hottestBlock = solver_->maxBlockTemp();
    rs.metrics.peakTemp = std::max(rs.metrics.peakTemp, hottestBlock);
    const double overshoot = hottestBlock - config_.dvfsSetpoint;
    if (overshoot > rs.metrics.maxOvershoot)
        rs.metrics.maxOvershoot = overshoot;
    if (overshoot > config_.settleBand)
        rs.metrics.settleTime = tEnd;
    if (hottestBlock > config_.thresholdTemp) {
        rs.metrics.emergencies += 1;
        if (!rs.inEmergency) {
            // Record the upward crossing, not every sample above.
            if (rs.tracer)
                rs.tracer->emergency(tEnd, hottestBlock,
                                     config_.thresholdTemp);
            if (rs.emergencyCounter)
                rs.emergencyCounter->add();
            rs.inEmergency = true;
        }
    } else {
        rs.inEmergency = false;
    }
    if (rs.stepCounter)
        rs.stepCounter->add();
    if (rs.tempHist)
        rs.tempHist->observe(hottestBlock);

    rs.winSteps += 1.0;

    // --- Outer loop: OS timer tick. ---
    if (!rs.tickPrimed) {
        rs.tickStartIntRf = rs.intRf;
        rs.tickStartFpRf = rs.fpRf;
        rs.tickPrimed = true;
    }
    if (tEnd + 1e-12 >= rs.nextTick) {
        MigrationObservation obs;
        obs.now = tEnd;
        obs.cores.resize(nc);
        obs.intRfSlope.resize(nc);
        obs.fpRfSlope.resize(nc);
        obs.freqCubed.resize(nc);
        obs.execShare.resize(nc);
        const double window = rs.winSteps * dt;
        for (int c = 0; c < numCores; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            CoreHotspotState &core = obs.cores[ci];
            const bool intHot = rs.intRf[ci] >= rs.fpRf[ci];
            core.criticalUnit =
                intHot ? UnitKind::IntRF : UnitKind::FpRF;
            core.criticalTemp = intHot ? rs.intRf[ci] : rs.fpRf[ci];
            core.secondaryTemp = intHot ? rs.fpRf[ci] : rs.intRf[ci];
            const Process *proc = kernel_->runningOn(c);
            core.process = proc ? proc->id() : -1;
            obs.intRfSlope[ci] =
                (rs.intRf[ci] - rs.tickStartIntRf[ci]) / window;
            obs.fpRfSlope[ci] =
                (rs.fpRf[ci] - rs.tickStartFpRf[ci]) / window;
            obs.freqCubed[ci] = rs.winAvail[ci] > 1e-9
                ? rs.winFreqCubed[ci] / rs.winAvail[ci] : 0.0;
            obs.execShare[ci] = rs.winAvail[ci] / rs.winSteps;
        }
        const std::vector<int> before = kernel_->assignment();
        migration_->onTick(obs, *kernel_);
        const std::vector<int> &after = kernel_->assignment();
        for (int c = 0; c < numCores; ++c) {
            if (before[static_cast<std::size_t>(c)] !=
                after[static_cast<std::size_t>(c)]) {
                // The OS hands the core a different thread: any
                // stop-go stall is lifted (the trip re-fires at
                // the next sample if the hotspot is still hot).
                throttles_.clearStall(c, tEnd);
            }
        }

        rs.tickStartIntRf = rs.intRf;
        rs.tickStartFpRf = rs.fpRf;
        std::fill(rs.winFreqCubed.begin(), rs.winFreqCubed.end(),
                  0.0);
        std::fill(rs.winAvail.begin(), rs.winAvail.end(), 0.0);
        rs.winSteps = 0.0;
        rs.nextTick += rs.tick;
    }

    // --- Optional probe. ---
    if (hook_ && rs.step % hookStride_ == 0) {
        StepSample sample;
        sample.time = tEnd;
        sample.intRfTemp = rs.intRf;
        sample.fpRfTemp = rs.fpRf;
        sample.freqScale.resize(nc);
        for (int c = 0; c < numCores; ++c)
            sample.freqScale[static_cast<std::size_t>(c)] =
                throttles_.freqScale(c) *
                coreFreqCap_[static_cast<std::size_t>(c)];
        sample.assignment = kernel_->assignment();
        sample.maxBlockTemp = hottestBlock;
        sample.blockTemp.resize(
            chip_->floorplan().numBlocks());
        for (std::size_t b = 0; b < sample.blockTemp.size(); ++b)
            sample.blockTemp[b] = solver_->blockTemp(b);
        hook_(sample);
    }

    rs.step += 1;
}

RunMetrics
DtmSimulator::finishRun()
{
    RunState &rs = run_;
    const auto t0 = rs.profile
        ? obs::PhaseProfile::Clock::now()
        : obs::PhaseProfile::Clock::time_point{};
    const auto nc = static_cast<std::size_t>(chip_->numCores());
    const double stepCount = static_cast<double>(rs.steps);
    double dutySum = 0.0;
    for (std::size_t c = 0; c < nc; ++c) {
        rs.metrics.coreDuty[c] /= stepCount;
        rs.metrics.coreMeanFreq[c] /= stepCount;
        dutySum += rs.metrics.coreDuty[c];
    }
    rs.metrics.dutyCycle = dutySum / static_cast<double>(nc);
    rs.metrics.throttleActuations = throttles_.actuations();
    rs.metrics.migrations = kernel_->migrationCount();
    rs.metrics.migrationPenaltyTime = kernel_->totalPenaltyTime();
    if (injector_) {
        const auto &cls = injector_->classActivations();
        rs.metrics.faultClassCounts.assign(cls.begin(), cls.end());
        rs.metrics.fallbackSibling = injector_->fallbackSibling();
        rs.metrics.fallbackChipWide = injector_->fallbackChipWide();
        rs.metrics.failSafeActivations =
            injector_->failSafeActivations();
    }
    rs.active = false;
    if (rs.profile) {
        rs.profile->add(obs::Phase::FinishRun,
                        std::chrono::duration<double>(
                            obs::PhaseProfile::Clock::now() - t0)
                            .count());
        rs.profile->flushTo(*config_.registry);
        rs.profile = nullptr;
    }
    return std::move(rs.metrics);
}

RunMetrics
DtmSimulator::run()
{
    beginRun();
    while (!done()) {
        gatherPowers();
        stepThermal();
        finishStep();
    }
    return finishRun();
}

} // namespace coolcmp
