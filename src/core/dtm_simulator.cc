#include "core/dtm_simulator.hh"

#include <algorithm>
#include <cmath>

#include "obs/registry.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace coolcmp {

DtmSimulator::DtmSimulator(
    std::shared_ptr<const ChipModel> chip, const PolicyConfig &policy,
    const DtmConfig &config,
    std::vector<std::shared_ptr<const PowerTrace>> traces)
    : chip_(std::move(chip)), policy_(policy), config_(config),
      throttles_(policy.mechanism, policy.scope, chip_->numCores(),
                 config_),
      solver_(chip_->makeSolver(config_.stepSeconds())),
      sensors_(makeRegisterFileSensors(chip_->floorplan(),
                                       config_.sensorQuantization,
                                       config_.sensorNoise)),
      l2IdleWatts_(config_.power.units[UnitKind::L2].idleWatts)
{
    if (traces.size() < static_cast<std::size_t>(chip_->numCores()))
        fatal("need at least one process per core");
    // One tracer pointer on the config fans out to every layer: the
    // throttle bank and migration policy read config_.tracer directly;
    // the kernel gets it through its params.
    config_.kernel.tracer = config_.tracer;
    std::vector<Process> processes;
    processes.reserve(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i)
        processes.emplace_back(static_cast<int>(i), traces[i]);
    kernel_ = std::make_unique<OsKernel>(
        chip_->numCores(), std::move(processes), config_.kernel);
    migration_ = makeMigrationPolicy(
        policy_.migration, static_cast<int>(traces.size()),
        chip_->numCores(), config_);
    initializeThermalState();
}

void
DtmSimulator::setSampleHook(std::function<void(const StepSample &)> hook,
                            std::uint64_t stride)
{
    hook_ = std::move(hook);
    hookStride_ = std::max<std::uint64_t>(stride, 1);
}

Vector
DtmSimulator::averageBlockPowers() const
{
    const Floorplan &plan = chip_->floorplan();
    Vector powers(plan.numBlocks(), 0.0);
    powers[chip_->l2Block()] = l2IdleWatts_;
    for (int c = 0; c < chip_->numCores(); ++c) {
        const Process *proc = kernel_->runningOn(c);
        if (!proc)
            continue;
        const PowerTrace &trace = proc->trace();
        PerUnit<double> avg(0.0);
        for (std::size_t i = 0; i < trace.numPoints(); ++i)
            for (std::size_t u = 0; u < numUnitKinds; ++u)
                avg[static_cast<UnitKind>(u)] +=
                    trace.point(i).power[static_cast<UnitKind>(u)];
        for (auto &v : avg)
            v /= static_cast<double>(trace.numPoints());
        for (UnitKind kind : coreUnitKinds())
            powers[chip_->blockOf(c, kind)] += avg[kind];
        powers[chip_->l2Block()] +=
            std::max(0.0, avg[UnitKind::L2] - l2IdleWatts_);
    }
    return powers;
}

void
DtmSimulator::initializeThermalState()
{
    // Start the run at the steady state of the workload's average
    // power, scaled so the hottest block sits initMargin below the
    // threshold: the long-run operating point an ideal regulator would
    // hold (the heatsink moves far too slowly to re-equilibrate within
    // the simulated 0.5 s, so the initial point matters and must be a
    // plausible one).
    const Vector dynAvg = averageBlockPowers();
    const RcNetwork &net = chip_->network();
    const double target =
        config_.thresholdTemp - config_.initMargin - net.ambient();

    double alpha = 1.0;
    Vector temps;
    for (int iter = 0; iter < 12; ++iter) {
        Vector powers = dynAvg;
        for (auto &p : powers)
            p *= alpha;
        if (!temps.empty()) {
            // Leakage at the current temperature estimate (full Vdd:
            // the regulated mix of speeds is not known yet, and
            // leakage is a secondary correction here).
            chip_->leakage().addLeakage(
                temps, [&](std::size_t) {
                    return config_.power.nominalVdd;
                },
                powers);
        }
        temps = net.steadyState(powers);
        double hottest = -1e9;
        for (std::size_t b = 0; b < net.numInputs(); ++b)
            hottest = std::max(hottest, temps[b] - net.ambient());
        if (hottest <= 0.0)
            break;
        const double ratio = target / hottest;
        alpha *= std::clamp(ratio, 0.2, 2.0);
        alpha = std::clamp(alpha, 0.01, 1.0);
        if (std::abs(ratio - 1.0) < 0.01)
            break;
    }
    solver_->setTemperatures(temps);
    // Wind the DVFS controllers to the regulated operating point:
    // dynamic power scales cubically, so the sustainable fraction
    // alpha corresponds to a frequency scale of alpha^(1/3).
    throttles_.initializeScale(std::cbrt(alpha));
}

RunMetrics
DtmSimulator::run()
{
    const int numCores = chip_->numCores();
    const auto nc = static_cast<std::size_t>(numCores);
    const double dt = config_.stepSeconds();
    const double cyclesPerStep =
        static_cast<double>(config_.intervalCycles);
    const std::uint64_t steps = config_.numSteps();

    RunMetrics metrics;
    metrics.duration = static_cast<double>(steps) * dt;
    metrics.coreInstructions.assign(nc, 0.0);
    metrics.coreDuty.assign(nc, 0.0);
    metrics.coreMeanFreq.assign(nc, 0.0);
    metrics.processInstructions.assign(kernel_->numProcesses(), 0.0);

    // Observability handles, resolved once so the hot loop updates
    // lock-free shards (or skips on one null check when detached).
    obs::Tracer *const tracer = config_.tracer;
    obs::Counter *stepCounter = nullptr;
    obs::Counter *emergencyCounter = nullptr;
    obs::Histogram *tempHist = nullptr;
    if (obs::Registry *reg = config_.registry) {
        stepCounter = &reg->counter("sim.steps");
        emergencyCounter = &reg->counter("sim.emergencies");
        tempHist = &reg->histogram(
            "sim.max_block_temp_c",
            obs::Histogram::linearEdges(40.0, 100.0, 120));
    }
    bool inEmergency = false;

    Vector blockPowers(chip_->floorplan().numBlocks(), 0.0);
    std::vector<double> coreHottest(nc, 0.0);
    std::vector<double> intRf(nc, 0.0);
    std::vector<double> fpRf(nc, 0.0);

    // OS-tick window accumulators for the outer loop.
    const double tick = config_.kernel.timerInterval;
    double nextTick = tick;
    std::vector<double> tickStartIntRf(nc, 0.0);
    std::vector<double> tickStartFpRf(nc, 0.0);
    std::vector<double> winFreqCubed(nc, 0.0);
    std::vector<double> winAvail(nc, 0.0);
    double winSteps = 0.0;
    bool tickPrimed = false;

    for (std::uint64_t n = 0; n < steps; ++n) {
        const double now = static_cast<double>(n) * dt;
        const double tEnd = now + dt;
        kernel_->advanceTo(now);

        // --- Execute one interval on each core. ---
        std::fill(blockPowers.begin(), blockPowers.end(), 0.0);
        double l2Power = l2IdleWatts_;
        for (int c = 0; c < numCores; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            Process *proc = kernel_->runningOn(c);
            const double s = throttles_.freqScale(c);
            const double blockedUntil = std::max(
                throttles_.unavailableUntil(c),
                kernel_->frozenUntil(c));
            const double blocked =
                std::clamp(blockedUntil - now, 0.0, dt);
            const double avail = 1.0 - blocked / dt;
            const double s3 = s * s * s;

            if (proc && avail > 0.0) {
                const TracePoint &pt = proc->currentPoint();
                const double insts =
                    proc->advance(s * avail * cyclesPerStep);
                metrics.coreInstructions[ci] += insts;
                metrics.processInstructions[static_cast<std::size_t>(
                    proc->id())] += insts;
                metrics.totalInstructions += insts;
                for (UnitKind kind : coreUnitKinds())
                    blockPowers[chip_->blockOf(c, kind)] +=
                        pt.power[kind] * s3 * avail;
                l2Power += std::max(0.0, pt.power[UnitKind::L2] -
                                             l2IdleWatts_) *
                    s3 * avail;
            }
            const double work = s * avail;
            metrics.coreDuty[ci] += work;
            metrics.coreMeanFreq[ci] += s;
            winFreqCubed[ci] += s3 * avail;
            winAvail[ci] += avail;
        }
        blockPowers[chip_->l2Block()] += l2Power;

        // --- Close the leakage loop at the step's start state. ---
        chip_->leakage().addLeakage(
            solver_->temperatures(),
            [&](std::size_t block) {
                const int core =
                    chip_->floorplan().blocks()[block].core;
                const double vs = core >= 0
                    ? throttles_.voltageScale(core) : 1.0;
                return config_.power.nominalVdd * vs;
            },
            blockPowers);

        // --- Advance the thermal state by one exact step. ---
        solver_->step(blockPowers, dt);

        // --- Read sensors and run the inner control loop. ---
        for (int c = 0; c < numCores; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            intRf[ci] = sensors_[ci].intRf.read(*solver_);
            fpRf[ci] = sensors_[ci].fpRf.read(*solver_);
            coreHottest[ci] = std::max(intRf[ci], fpRf[ci]);
        }
        throttles_.update(coreHottest, tEnd);

        const double hottestBlock = solver_->maxBlockTemp();
        metrics.peakTemp = std::max(metrics.peakTemp, hottestBlock);
        if (hottestBlock > config_.thresholdTemp) {
            metrics.emergencies += 1;
            if (!inEmergency) {
                // Record the upward crossing, not every sample above.
                if (tracer)
                    tracer->emergency(tEnd, hottestBlock,
                                      config_.thresholdTemp);
                if (emergencyCounter)
                    emergencyCounter->add();
                inEmergency = true;
            }
        } else {
            inEmergency = false;
        }
        if (stepCounter)
            stepCounter->add();
        if (tempHist)
            tempHist->observe(hottestBlock);

        winSteps += 1.0;

        // --- Outer loop: OS timer tick. ---
        if (!tickPrimed) {
            tickStartIntRf = intRf;
            tickStartFpRf = fpRf;
            tickPrimed = true;
        }
        if (tEnd + 1e-12 >= nextTick) {
            MigrationObservation obs;
            obs.now = tEnd;
            obs.cores.resize(nc);
            obs.intRfSlope.resize(nc);
            obs.fpRfSlope.resize(nc);
            obs.freqCubed.resize(nc);
            obs.execShare.resize(nc);
            const double window = winSteps * dt;
            for (int c = 0; c < numCores; ++c) {
                const auto ci = static_cast<std::size_t>(c);
                CoreHotspotState &core = obs.cores[ci];
                const bool intHot = intRf[ci] >= fpRf[ci];
                core.criticalUnit =
                    intHot ? UnitKind::IntRF : UnitKind::FpRF;
                core.criticalTemp = intHot ? intRf[ci] : fpRf[ci];
                core.secondaryTemp = intHot ? fpRf[ci] : intRf[ci];
                const Process *proc = kernel_->runningOn(c);
                core.process = proc ? proc->id() : -1;
                obs.intRfSlope[ci] =
                    (intRf[ci] - tickStartIntRf[ci]) / window;
                obs.fpRfSlope[ci] =
                    (fpRf[ci] - tickStartFpRf[ci]) / window;
                obs.freqCubed[ci] = winAvail[ci] > 1e-9
                    ? winFreqCubed[ci] / winAvail[ci] : 0.0;
                obs.execShare[ci] = winAvail[ci] / winSteps;
            }
            const std::vector<int> before = kernel_->assignment();
            migration_->onTick(obs, *kernel_);
            const std::vector<int> &after = kernel_->assignment();
            for (int c = 0; c < numCores; ++c) {
                if (before[static_cast<std::size_t>(c)] !=
                    after[static_cast<std::size_t>(c)]) {
                    // The OS hands the core a different thread: any
                    // stop-go stall is lifted (the trip re-fires at
                    // the next sample if the hotspot is still hot).
                    throttles_.clearStall(c, tEnd);
                }
            }

            tickStartIntRf = intRf;
            tickStartFpRf = fpRf;
            std::fill(winFreqCubed.begin(), winFreqCubed.end(), 0.0);
            std::fill(winAvail.begin(), winAvail.end(), 0.0);
            winSteps = 0.0;
            nextTick += tick;
        }

        // --- Optional probe. ---
        if (hook_ && n % hookStride_ == 0) {
            StepSample sample;
            sample.time = tEnd;
            sample.intRfTemp = intRf;
            sample.fpRfTemp = fpRf;
            sample.freqScale.resize(nc);
            for (int c = 0; c < numCores; ++c)
                sample.freqScale[static_cast<std::size_t>(c)] =
                    throttles_.freqScale(c);
            sample.assignment = kernel_->assignment();
            sample.maxBlockTemp = hottestBlock;
            sample.blockTemp.resize(
                chip_->floorplan().numBlocks());
            for (std::size_t b = 0; b < sample.blockTemp.size(); ++b)
                sample.blockTemp[b] = solver_->blockTemp(b);
            hook_(sample);
        }
    }

    const double stepCount = static_cast<double>(steps);
    double dutySum = 0.0;
    for (std::size_t c = 0; c < nc; ++c) {
        metrics.coreDuty[c] /= stepCount;
        metrics.coreMeanFreq[c] /= stepCount;
        dutySum += metrics.coreDuty[c];
    }
    metrics.dutyCycle = dutySum / static_cast<double>(numCores);
    metrics.throttleActuations = throttles_.actuations();
    metrics.migrations = kernel_->migrationCount();
    metrics.migrationPenaltyTime = kernel_->totalPenaltyTime();
    return metrics;
}

} // namespace coolcmp
