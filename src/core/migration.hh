/**
 * @file
 * OS-level migration policies: the Figure 4 matching algorithm shared
 * by both mechanisms, the counter-based policy of Section 6.1, and the
 * sensor-based policy (thread-core thermal-trend table) of Section 6.3
 * / Figure 6.
 */

#ifndef COOLCMP_CORE_MIGRATION_HH
#define COOLCMP_CORE_MIGRATION_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/dtm_config.hh"
#include "core/taxonomy.hh"
#include "os/kernel.hh"
#include "thermal/unit.hh"

namespace coolcmp {

/** Snapshot of one core's hotspot situation at a decision point. */
struct CoreHotspotState
{
    UnitKind criticalUnit = UnitKind::IntRF; ///< hotter RF sensor
    double criticalTemp = 0.0;
    double secondaryTemp = 0.0;
    int process = -1; ///< id of the thread currently on the core

    /** Hotspot imbalance as defined in Figure 4. */
    double imbalance() const { return criticalTemp - secondaryTemp; }
};

/** Estimated heat intensity of (process, core, unit). */
using IntensityFn =
    std::function<double(int process, int core, UnitKind unit)>;

/**
 * The Figure 4 decision algorithm: cores sorted by hotspot imbalance
 * pick, in order, the remaining thread least intense on their critical
 * hotspot. Returns the proposed core->process assignment (which may
 * equal the current one: "the best candidate ... will be itself, in
 * which case a migration is not done").
 *
 * @param keepMargin stickiness: a core keeps its current thread unless
 * a candidate is at least this much (relatively) less intense. Damps
 * oscillation when intensities are nearly tied; 0 gives the literal
 * greedy matching.
 */
std::vector<int> decideAssignment(
    const std::vector<CoreHotspotState> &cores,
    const IntensityFn &intensity, double keepMargin = 0.1);

/** What the outer loop observes at each OS timer tick. */
struct MigrationObservation
{
    double now = 0.0;
    std::vector<CoreHotspotState> cores;

    /** Per-core, per-RF temperature slopes over the last tick window,
     *  C per second of wall time. */
    std::vector<double> intRfSlope;
    std::vector<double> fpRfSlope;

    /** Mean cubed frequency scale over the window (the inner loop's
     *  feedback data used to de-scale thermal trends). */
    std::vector<double> freqCubed;

    /** Fraction of the window the core actually executed. */
    std::vector<double> execShare;
};

/** Common interface of the outer-loop policies. */
class MigrationPolicy
{
  public:
    virtual ~MigrationPolicy() = default;

    /** Called once per OS timer tick with fresh observations. */
    virtual void onTick(const MigrationObservation &obs,
                        OsKernel &kernel) = 0;

    /** Number of decision rounds evaluated. */
    std::uint64_t decisions() const { return decisions_; }

  protected:
    std::uint64_t decisions_ = 0;

    /** Optional event tracer (from DtmConfig; may be null). */
    obs::Tracer *tracer_ = nullptr;

    /** Record a matching-algorithm round: its per-core inputs and the
     *  proposed assignment. No-op without a tracer. */
    void traceDecision(const MigrationObservation &obs,
                       const std::vector<int> &before,
                       const std::vector<int> &proposed,
                       bool exploratory) const;
};

/** The do-nothing policy (migration axis = None). */
class NoMigrationPolicy : public MigrationPolicy
{
  public:
    void onTick(const MigrationObservation &obs,
                OsKernel &kernel) override;
};

/**
 * Shared trigger logic (Section 6.1): a decision round runs when at
 * least `quorum` cores have seen their critical hotspot identity
 * change since the last round, or -- as a fallback for workloads whose
 * critical units never flip -- when the spread between the hottest and
 * coolest core's critical temperature exceeds `fallbackSpread`.
 * Actuation is always additionally rate-limited by the kernel's 10 ms
 * minimum migration interval.
 */
class MigrationTrigger
{
  public:
    MigrationTrigger(int numCores, int quorum, double fallbackSpread,
                     double tempDelta);

    /** Update tracking and report whether a decision round is due. */
    bool shouldDecide(const MigrationObservation &obs,
                      const OsKernel &kernel);

    /** Reset the change tracking after a decision round. */
    void acknowledge(const MigrationObservation &obs);

  private:
    int quorum_;
    double fallbackSpread_;
    double tempDelta_;
    std::vector<UnitKind> lastCritical_; ///< as of the last tick
    std::vector<double> decisionTemp_;   ///< as of the last decision
    std::vector<bool> changed_; ///< flip signaled since last decision
    bool primed_ = false;
};

/** Counter-based migration (Section 6.1). */
class CounterMigrationPolicy : public MigrationPolicy
{
  public:
    CounterMigrationPolicy(int numCores, const DtmConfig &config);

    void onTick(const MigrationObservation &obs,
                OsKernel &kernel) override;

  private:
    MigrationTrigger trigger_;
};

/**
 * The OS-managed thread-core thermal-trend table of Figure 6. Cells
 * accumulate observed hotspot warming slopes, de-scaled by the cubed
 * frequency factor recorded from the inner PI loop.
 */
class ThermalTrendTable
{
  public:
    ThermalTrendTable(int numProcesses, int numCores);

    /** Record one de-scaled slope sample for (process, core, unit). */
    void record(int process, int core, UnitKind unit, double slope,
                double weight);

    /** True if (process, core) has any recorded data. */
    bool hasData(int process, int core) const;

    /**
     * Figure 6 gate: every thread profiled on at least one core and
     * every core tested with at least two threads.
     */
    bool sufficient() const;

    /**
     * Estimated intensity of (process, core, unit): the recorded mean
     * where available, otherwise the thread mean corrected by the
     * core's offset (cores differ systematically through their
     * neighbors, e.g. proximity to the cool L2).
     */
    double estimate(int process, int core, UnitKind unit) const;

    int numProcesses() const { return numProcesses_; }
    int numCores() const { return numCores_; }

  private:
    struct Cell
    {
        double sum = 0.0;
        double weight = 0.0;

        double mean() const { return weight > 0.0 ? sum / weight : 0.0; }
        bool filled() const { return weight > 0.0; }
    };

    int numProcesses_;
    int numCores_;
    std::vector<Cell> cells_; ///< [process][core][unit0|unit1]

    const Cell &cell(int process, int core, UnitKind unit) const;
    Cell &cell(int process, int core, UnitKind unit);
    double threadMean(int process, UnitKind unit) const;
    double coreOffset(int core, UnitKind unit) const;
};

/** Sensor-based migration (Section 6.3, Figure 6). */
class SensorMigrationPolicy : public MigrationPolicy
{
  public:
    SensorMigrationPolicy(int numProcesses, int numCores,
                          const DtmConfig &config);

    void onTick(const MigrationObservation &obs,
                OsKernel &kernel) override;

    const ThermalTrendTable &table() const { return table_; }

    /** Number of exploratory (profiling) migration rounds taken. */
    std::uint64_t exploreRounds() const { return exploreRounds_; }

  private:
    MigrationTrigger trigger_;
    ThermalTrendTable table_;
    std::uint64_t exploreRounds_ = 0;

    /** Minimum executed share of a window for a trend sample to carry
     *  signal. */
    static constexpr double minExecShare_ = 0.25;
};

/** Factory over the migration axis. */
std::unique_ptr<MigrationPolicy> makeMigrationPolicy(
    MigrationKind kind, int numProcesses, int numCores,
    const DtmConfig &config);

} // namespace coolcmp

#endif // COOLCMP_CORE_MIGRATION_HH
