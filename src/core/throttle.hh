/**
 * @file
 * Inner-loop throttling controllers: the stop-go trip mechanism and
 * the PI-based DVFS regulator, applicable per core (distributed) or
 * chip-wide (global).
 */

#ifndef COOLCMP_CORE_THROTTLE_HH
#define COOLCMP_CORE_THROTTLE_HH

#include <memory>
#include <vector>

#include "control/pi_controller.hh"
#include "core/dtm_config.hh"
#include "core/taxonomy.hh"

namespace coolcmp {

class FaultInjector;

/**
 * One throttle domain (a core, or the whole chip under global scope).
 *
 * Both mechanisms expose the same downstream interface: a frequency
 * scale factor and an "unavailable until" time covering stop-go stalls
 * and DVFS transition penalties.
 */
class ThrottleDomain
{
  public:
    /**
     * @param id domain identity for event tracing: the core index
     * under distributed scope, -1 for the single chip-wide domain.
     */
    ThrottleDomain(ThrottleMechanism mechanism, const DtmConfig &config,
                   int id = 0);

    /**
     * Feed the domain's hottest sensor reading at time now (called
     * once per simulation step).
     */
    void update(double hottestTemp, double now);

    /** Current frequency scale factor in [minFreqScale, 1]. Stop-go
     *  domains always report 1 (they run full blast or not at all). */
    double freqScale() const { return freqScale_; }

    /** Supply voltage scale (V proportional to f under DVFS). */
    double voltageScale() const { return freqScale_; }

    /** The domain cannot execute before this time (stall/penalty). */
    double unavailableUntil() const { return unavailableUntil_; }

    /** True if the domain is currently inside a stop-go stall. */
    bool stalled(double now) const { return now < unavailableUntil_; }

    /** Number of stop-go trips or DVFS transitions taken. */
    std::uint64_t actuations() const { return actuations_; }

    ThrottleMechanism mechanism() const { return mechanism_; }

    /**
     * Start the domain at a given frequency scale (DVFS only): the
     * run begins at a regulated operating point, so winding the PI
     * state to the matching output avoids a spurious full-speed
     * opening transient. No-op for stop-go domains.
     */
    void initializeScale(double scale);

    /**
     * Cancel an in-progress stop-go stall (a migration landed a
     * different thread on this core, so the OS lets it resume; the
     * trip re-fires at the next sample if the hotspot is still above
     * the trippoint). DVFS transition penalties are not cancelable.
     */
    void clearStall(double now);

    /** Reset to the initial (full-speed) state. */
    void reset();

    /**
     * Attach the run's fault injector (borrowed, may be null): stop-go
     * stalls are stretched by timer slip and DVFS transitions consult
     * it for dropped commands and extra PLL relock lag. Null keeps the
     * exact fault-free actuation path.
     */
    void setFaultInjector(FaultInjector *injector)
    {
        injector_ = injector;
    }

  private:
    ThrottleMechanism mechanism_;
    const DtmConfig &config_;
    int id_;
    std::unique_ptr<DiscretePidController> pi_;
    FaultInjector *injector_ = nullptr;
    double freqScale_ = 1.0;
    double unavailableUntil_ = 0.0;
    std::uint64_t actuations_ = 0;
};

/**
 * The set of throttle domains for a chip under a given scope: one
 * domain per core (distributed) or a single shared domain (global).
 */
class ThrottleBank
{
  public:
    ThrottleBank(ThrottleMechanism mechanism, ControlScope scope,
                 int numCores, const DtmConfig &config);

    /**
     * Feed per-core hottest-sensor readings. Under global scope the
     * single controller sees the chip-wide maximum, matching Section
     * 5.2 ("a single PI controller which calculates based on the
     * hottest of all sensors across all cores").
     */
    void update(const std::vector<double> &coreHottest, double now);

    /** Frequency scale currently applied to a core. */
    double freqScale(int core) const;

    /** Voltage scale currently applied to a core. */
    double voltageScale(int core) const;

    /** Time before which the core cannot execute. */
    double unavailableUntil(int core) const;

    /** Cancel the stop-go stall covering a core after a migration. */
    void clearStall(int core, double now);

    /** Start every domain at the given frequency scale (DVFS only). */
    void initializeScale(double scale);

    /** Total actuations across domains. */
    std::uint64_t actuations() const;

    /** Fan the run's fault injector out to every domain (null
     *  detaches; see ThrottleDomain::setFaultInjector). */
    void setFaultInjector(FaultInjector *injector);

    ControlScope scope() const { return scope_; }

  private:
    ControlScope scope_;
    std::vector<ThrottleDomain> domains_;

    const ThrottleDomain &domainFor(int core) const;
};

} // namespace coolcmp

#endif // COOLCMP_CORE_THROTTLE_HH
