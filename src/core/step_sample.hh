/**
 * @file
 * Per-step probe record of the DTM simulator (Figure 5 time series).
 * Lives in its own dependency-free header so low-level consumers
 * (obs::CsvExporter) can read samples without pulling in the
 * simulator stack.
 */

#ifndef COOLCMP_CORE_STEP_SAMPLE_HH
#define COOLCMP_CORE_STEP_SAMPLE_HH

#include <vector>

namespace coolcmp {

/** Per-step probe for time-series outputs (Figure 5). */
struct StepSample
{
    double time = 0.0;
    std::vector<double> intRfTemp;   ///< per core, C
    std::vector<double> fpRfTemp;    ///< per core, C
    std::vector<double> freqScale;   ///< per core
    std::vector<int> assignment;     ///< core -> process id
    double maxBlockTemp = 0.0;
    std::vector<double> blockTemp;   ///< per floorplan block, C
};

} // namespace coolcmp

#endif // COOLCMP_CORE_STEP_SAMPLE_HH
