#include "core/taxonomy.hh"

#include <array>

namespace coolcmp {

const std::string &
mechanismName(ThrottleMechanism mechanism)
{
    static const std::array<std::string, 2> names = {"stop-go", "DVFS"};
    return names[mechanism == ThrottleMechanism::StopGo ? 0 : 1];
}

const std::string &
scopeName(ControlScope scope)
{
    static const std::array<std::string, 2> names = {"Global", "Dist."};
    return names[scope == ControlScope::Global ? 0 : 1];
}

const std::string &
migrationName(MigrationKind kind)
{
    static const std::array<std::string, 3> names = {
        "no migration", "counter-based migration",
        "sensor-based migration"};
    switch (kind) {
      case MigrationKind::None: return names[0];
      case MigrationKind::CounterBased: return names[1];
      default: return names[2];
    }
}

std::string
PolicyConfig::label() const
{
    std::string out = scopeName(scope) + " " + mechanismName(mechanism);
    if (migration != MigrationKind::None)
        out += ", " + migrationName(migration);
    return out;
}

std::string
PolicyConfig::slug() const
{
    std::string out =
        scope == ControlScope::Global ? "global" : "dist";
    out += mechanism == ThrottleMechanism::StopGo ? "-stopgo" : "-dvfs";
    switch (migration) {
      case MigrationKind::None: break;
      case MigrationKind::CounterBased: out += "-counter"; break;
      case MigrationKind::SensorBased: out += "-sensor"; break;
    }
    return out;
}

const std::vector<PolicyConfig> &
allPolicies()
{
    static const std::vector<PolicyConfig> policies = [] {
        std::vector<PolicyConfig> out;
        for (MigrationKind mig :
             {MigrationKind::None, MigrationKind::CounterBased,
              MigrationKind::SensorBased}) {
            for (ControlScope scope :
                 {ControlScope::Global, ControlScope::Distributed}) {
                for (ThrottleMechanism mech :
                     {ThrottleMechanism::StopGo,
                      ThrottleMechanism::Dvfs}) {
                    out.push_back({mech, scope, mig});
                }
            }
        }
        return out;
    }();
    return policies;
}

const std::vector<PolicyConfig> &
nonMigrationPolicies()
{
    static const std::vector<PolicyConfig> policies = {
        {ThrottleMechanism::StopGo, ControlScope::Global,
         MigrationKind::None},
        {ThrottleMechanism::StopGo, ControlScope::Distributed,
         MigrationKind::None},
        {ThrottleMechanism::Dvfs, ControlScope::Global,
         MigrationKind::None},
        {ThrottleMechanism::Dvfs, ControlScope::Distributed,
         MigrationKind::None},
    };
    return policies;
}

} // namespace coolcmp
