/**
 * @file
 * Crash-safe sweep journal: resumable runMany.
 *
 * A SweepJournal records every completed job of a sweep to one file,
 * rewritten atomically (tmp+rename via obs::atomicWriteFile) after
 * each completion, so a killed sweep can be resumed by re-running
 * only the unfinished jobs. The header stamps the experiment's
 * configKey and the job count; a journal written under different
 * constants, a different job list length, or an older schema is
 * rejected wholesale and the sweep starts over — a stale journal must
 * never smuggle results into a resumed run.
 *
 * Because every simulator owns its RNG streams (see FaultPlan and
 * SensorModel seeding), a resumed sweep is bit-identical to an
 * uninterrupted one: replayed jobs return the journaled metrics,
 * re-run jobs recompute exactly what they would have produced.
 *
 * The RunMetrics body serialization (writeRunMetricsBody /
 * readRunMetricsBody) is shared with the on-disk result cache in
 * experiment.cc, so the two formats cannot drift apart.
 */

#ifndef COOLCMP_CORE_SWEEP_JOURNAL_HH
#define COOLCMP_CORE_SWEEP_JOURNAL_HH

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hh"

namespace coolcmp {

/** Serialize the RunMetrics payload (no header line). */
void writeRunMetricsBody(std::ostream &out, const RunMetrics &m);

/** Parse a writeRunMetricsBody payload; false on malformed input. */
bool readRunMetricsBody(std::istream &in, RunMetrics &m);

/**
 * The journal of one sweep. Thread-safe: runMany workers record
 * completions concurrently; each record() rewrites the whole file
 * under the lock (sweeps are tens-to-hundreds of jobs, so the full
 * rewrite is cheap next to one simulation, and it keeps the on-disk
 * state self-validating — no append-truncation corner cases).
 */
class SweepJournal
{
  public:
    /**
     * @param path journal file (created on first record())
     * @param configKeyHex hex Experiment::configKey() of the sweep
     * @param numJobs length of the job list being journaled
     */
    SweepJournal(std::string path, std::string configKeyHex,
                 std::size_t numJobs);

    /**
     * Load an existing journal file. Returns true when the file
     * existed, matched the header (schema, configKey, job count), and
     * parsed cleanly; its entries are then served via has()/result().
     * A missing file is a clean false; a mismatched or corrupt file
     * warns and is ignored (the sweep recomputes everything).
     */
    bool load();

    /** True when `job` has a journaled result. */
    bool has(std::size_t job) const;

    /** The journaled result of `job` (valid only when has(job)). */
    const RunMetrics &result(std::size_t job) const;

    /** Number of journaled jobs. */
    std::size_t completedCount() const;

    /** Record one completed job and atomically rewrite the file. */
    void record(std::size_t job, const RunMetrics &m);

    /** Record a batch of completed jobs with ONE atomic rewrite —
     *  the fleet coordinator commits every result of a streamed
     *  batch in a single file write instead of one rewrite per job.
     *  The final file bytes are identical to recording the jobs one
     *  at a time (entries are always emitted in ascending index
     *  order). */
    void
    recordAll(const std::vector<std::pair<std::size_t, RunMetrics>>
                  &entries);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::string key_;
    std::size_t numJobs_;

    mutable std::mutex mutex_;
    std::vector<char> done_;
    std::vector<RunMetrics> results_;

    void rewriteLocked();
};

} // namespace coolcmp

#endif // COOLCMP_CORE_SWEEP_JOURNAL_HH
