#include "core/sweep_journal.hh"

#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "obs/exporter.hh"
#include "util/logging.hh"

namespace coolcmp {

namespace {

constexpr const char *kJournalMagic = "coolcmp-journal-v1";

void
dumpDoubles(std::ostream &out, const std::vector<double> &v)
{
    out << v.size();
    for (double x : v)
        out << " " << x;
    out << "\n";
}

bool
readDoubles(std::istream &in, std::vector<double> &v)
{
    std::size_t n = 0;
    if (!(in >> n) || n > 4096)
        return false;
    v.resize(n);
    for (double &x : v)
        if (!(in >> x))
            return false;
    return true;
}

void
dumpCounts(std::ostream &out, const std::vector<std::uint64_t> &v)
{
    out << v.size();
    for (std::uint64_t x : v)
        out << " " << x;
    out << "\n";
}

bool
readCounts(std::istream &in, std::vector<std::uint64_t> &v)
{
    std::size_t n = 0;
    if (!(in >> n) || n > 4096)
        return false;
    v.resize(n);
    for (std::uint64_t &x : v)
        if (!(in >> x))
            return false;
    return true;
}

} // namespace

void
writeRunMetricsBody(std::ostream &out, const RunMetrics &m)
{
    // max_digits10: journal replay must round-trip bit-exactly.
    out.precision(std::numeric_limits<double>::max_digits10);
    out << m.duration << " " << m.totalInstructions << " "
        << m.dutyCycle << " " << m.peakTemp << " " << m.emergencies
        << " " << m.throttleActuations << " " << m.migrations << " "
        << m.migrationPenaltyTime << " " << m.maxOvershoot << " "
        << m.settleTime << "\n";
    out << m.fallbackSibling << " " << m.fallbackChipWide << " "
        << m.failSafeActivations << "\n";
    dumpCounts(out, m.faultClassCounts);
    dumpDoubles(out, m.coreInstructions);
    dumpDoubles(out, m.coreDuty);
    dumpDoubles(out, m.coreMeanFreq);
    dumpDoubles(out, m.processInstructions);
}

bool
readRunMetricsBody(std::istream &in, RunMetrics &m)
{
    if (!(in >> m.duration >> m.totalInstructions >> m.dutyCycle >>
          m.peakTemp >> m.emergencies >> m.throttleActuations >>
          m.migrations >> m.migrationPenaltyTime >> m.maxOvershoot >>
          m.settleTime))
        return false;
    if (!(in >> m.fallbackSibling >> m.fallbackChipWide >>
          m.failSafeActivations))
        return false;
    return readCounts(in, m.faultClassCounts) &&
        readDoubles(in, m.coreInstructions) &&
        readDoubles(in, m.coreDuty) &&
        readDoubles(in, m.coreMeanFreq) &&
        readDoubles(in, m.processInstructions);
}

SweepJournal::SweepJournal(std::string path, std::string configKeyHex,
                           std::size_t numJobs)
    : path_(std::move(path)), key_(std::move(configKeyHex)),
      numJobs_(numJobs), done_(numJobs, 0), results_(numJobs)
{
}

bool
SweepJournal::load()
{
    std::ifstream in(path_);
    if (!in)
        return false; // no journal yet: a fresh sweep, not an error
    std::string magic, key;
    std::size_t jobs = 0;
    if (!(in >> magic >> key >> jobs)) {
        warn("sweep journal ", path_, " has no valid header; ignoring");
        return false;
    }
    if (magic != kJournalMagic) {
        warn("sweep journal ", path_, " has schema '", magic,
             "', expected ", kJournalMagic, "; ignoring");
        return false;
    }
    if (key != key_ || jobs != numJobs_) {
        warn("sweep journal ", path_, " was written for config ", key,
             " with ", jobs, " jobs, expected ", key_, " with ",
             numJobs_, "; ignoring");
        return false;
    }
    // Parse entries into a staging area: a journal that goes bad
    // halfway (truncated write from a dying process despite the
    // atomic rename, manual edit) is rejected wholesale.
    std::vector<char> done(numJobs_, 0);
    std::vector<RunMetrics> results(numJobs_);
    std::string tag;
    while (in >> tag) {
        std::size_t i = 0;
        if (tag != "job" || !(in >> i) || i >= numJobs_) {
            warn("sweep journal ", path_,
                 " has a malformed entry; ignoring the journal");
            return false;
        }
        RunMetrics m;
        if (!readRunMetricsBody(in, m)) {
            warn("sweep journal ", path_, " entry for job ", i,
                 " is malformed; ignoring the journal");
            return false;
        }
        done[i] = 1;
        results[i] = std::move(m);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    done_ = std::move(done);
    results_ = std::move(results);
    return true;
}

bool
SweepJournal::has(std::size_t job) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return job < done_.size() && done_[job] != 0;
}

const RunMetrics &
SweepJournal::result(std::size_t job) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return results_.at(job);
}

std::size_t
SweepJournal::completedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (char d : done_)
        n += d != 0;
    return n;
}

void
SweepJournal::record(std::size_t job, const RunMetrics &m)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (job >= numJobs_)
        panic("sweep journal record out of range");
    done_[job] = 1;
    results_[job] = m;
    rewriteLocked();
}

void
SweepJournal::recordAll(
    const std::vector<std::pair<std::size_t, RunMetrics>> &entries)
{
    if (entries.empty())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[job, m] : entries) {
        if (job >= numJobs_)
            panic("sweep journal record out of range");
        done_[job] = 1;
        results_[job] = m;
    }
    rewriteLocked();
}

void
SweepJournal::rewriteLocked()
{
    obs::atomicWriteFile(path_, "sweep-journal", [&](std::ostream &out) {
        out << kJournalMagic << " " << key_ << " " << numJobs_ << "\n";
        for (std::size_t i = 0; i < numJobs_; ++i) {
            if (!done_[i])
                continue;
            out << "job " << i << "\n";
            writeRunMetricsBody(out, results_[i]);
        }
    });
}

} // namespace coolcmp
