/**
 * @file
 * Configuration of the thermal/timing DTM simulator: the paper's
 * thermal constraint, controller constants, and penalties (Sections
 * 3-6 and Table 3).
 */

#ifndef COOLCMP_CORE_DTM_CONFIG_HH
#define COOLCMP_CORE_DTM_CONFIG_HH

#include <cstdint>

#include "control/pi_controller.hh"
#include "fault/fault_plan.hh"
#include "os/kernel.hh"
#include "power/leakage.hh"
#include "power/power_model.hh"
#include "thermal/package.hh"
#include "thermal/sensor.hh"
#include "util/env.hh"
#include "util/units.hh"

namespace coolcmp::obs {
class Registry;
class Tracer;
} // namespace coolcmp::obs

namespace coolcmp {

/** Default reduced-order tolerance: COOLCMP_ROM_TOL in kelvin, 0
 *  (= reduced solver off) when unset. */
inline double
defaultRomTolerance()
{
    return envDouble("COOLCMP_ROM_TOL", 0.0, 0.0, 1e3);
}

/** All knobs of one DTM simulation. */
struct DtmConfig
{
    // --- Thermal constraint (Section 3.5). ---
    double thresholdTemp = 84.2;  ///< C; never to be exceeded
    double stopGoTrip = 83.5;     ///< trip "just below the threshold"
    double dvfsSetpoint = 82.5;   ///< PI target "just below threshold"

    /** Control-loop health accounting: the run is "settled" once the
     *  hottest block stays within this band above the DVFS setpoint.
     *  RunMetrics::settleTime records the last excursion, so this
     *  knob is part of configKey() (it changes cached outputs). */
    double settleBand = 1.0;

    // --- Stop-go mechanism (Sections 2.3, 5.1). ---
    double stopGoStall = milliseconds(30);

    // --- DVFS mechanism (Section 4 and Table 3). ---
    PidGains piGains = paperPiGains();
    double minFreqScale = 0.2;         ///< 20% = 720 MHz
    double minTransition = 0.02 * 0.8; ///< 2% of the scale range
    double dvfsTransitionPenalty = microseconds(10);

    // --- Simulation timing (Section 3). ---
    std::uint64_t intervalCycles = 100000; ///< one thermal sample
    double duration = seconds(0.5);        ///< silicon time per run

    // --- Reduced-order thermal solver (src/thermal/reduced): > 0
    //     steps the modal solver selected to keep every die
    //     temperature within this many kelvin of the full dense
    //     model; 0 keeps the dense propagator. Part of configKey()
    //     (changes simulated temperatures at the tolerance level). ---
    double romTolerance = defaultRomTolerance();

    // --- OS parameters (Section 6, Table 3). ---
    KernelParams kernel;

    // --- Sensor modeling (ideal by default; Section 4.1 notes sensor
    //     delay is negligible at these time scales). The model is the
    //     healthy read path every diode shares; `faults` schedules
    //     what goes wrong on top of it (sensor corruption, actuator
    //     misbehaviour, power spikes). Both are part of configKey():
    //     fault runs cache separately from clean runs. ---
    SensorModel sensors;
    FaultPlan faults;

    // --- Initialization: start from the steady state whose hottest
    //     block sits this far below the threshold (a warm, regulated
    //     operating point; the heatsink time constant is far longer
    //     than the simulated 0.5 s). ---
    double initMargin = 3.0;

    // --- Migration trigger (Section 6.1): actuate when at least this
    //     many cores report a critical-hotspot identity change; the
    //     fallback also evaluates when core imbalance exceeds
    //     fallbackSpread C at the 10 ms boundary. ---
    int hotspotChangeQuorum = 2;
    double hotspotTempDelta = 0.75; ///< C; a critical-hotspot move this
                                    ///< large also counts as a change
    double fallbackSpread = 1.5;

    // --- Observability (src/obs): optional control-loop event tracer
    //     and metrics registry. Both are borrowed pointers owned by
    //     the caller; null means "no observability" and every emit
    //     site reduces to one predictable branch. Deliberately NOT
    //     part of configKey(): attaching observers cannot invalidate
    //     result caches or change simulated behavior. A tracer must
    //     not be shared between concurrently running simulators (see
    //     obs::TraceSession for per-job tracers); the registry is
    //     thread-safe and meant to be shared. ---
    obs::Tracer *tracer = nullptr;
    obs::Registry *registry = nullptr;

    // --- Package / power calibrations. ---
    PackageParams package = PackageParams::desktop();
    PowerModelParams power = PowerModelParams::table3Calibrated();
    LeakageParams leakage;

    /** Wall-clock length of one simulation step (one trace interval at
     *  nominal frequency): 100k cycles / 3.6 GHz = 27.78 us. */
    double stepSeconds() const
    {
        return static_cast<double>(intervalCycles) / power.nominalFreq;
    }

    /** Number of whole steps in the run. */
    std::uint64_t numSteps() const
    {
        return static_cast<std::uint64_t>(duration / stepSeconds());
    }
};

} // namespace coolcmp

#endif // COOLCMP_CORE_DTM_CONFIG_HH
