/**
 * @file
 * BatchRunner: lock-steps a group of DTM simulators that share one
 * thermal discretization, so each simulation step performs a single
 * batched GEMM (BatchedZohPropagator) where the sequential path would
 * perform one GEMV per simulator.
 *
 * Lanes drain and refill: when a simulator finishes, its lane is
 * handed back to the caller (metrics out) and refilled with the next
 * pending job, so a long queue keeps the batch wide to the end. Each
 * runner is confined to one thread; parallelism across runners comes
 * from the experiment driver's worker pool.
 */

#ifndef COOLCMP_CORE_BATCH_RUNNER_HH
#define COOLCMP_CORE_BATCH_RUNNER_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/dtm_simulator.hh"
#include "core/metrics.hh"

namespace coolcmp {

/** Lane-based lock-step driver over cooperative DtmSimulators. */
class BatchRunner
{
  public:
    /** One occupied lane: the simulator and the caller's job tag. */
    struct Lane
    {
        std::unique_ptr<DtmSimulator> sim;
        std::size_t tag = 0;
    };

    /**
     * @param width maximum simultaneous lanes (GEMM batch size)
     * @param refill fill an empty lane with the next pending job;
     * return false when no jobs remain. Called until it declines.
     * @param complete consume a finished lane's metrics.
     * @param registry when non-null, the runner times its own phases
     * (queue pull, input packing, the shared GEMM, lane retirement)
     * and flushes them here at the end of run(); the per-lane phases
     * come from the simulators' own profiles.
     */
    BatchRunner(std::size_t width,
                std::function<bool(Lane &)> refill,
                std::function<void(Lane &, RunMetrics &&)> complete,
                obs::Registry *registry = nullptr);

    /** Run every job to completion (refill -> lock-step -> retire). */
    void run();

  private:
    std::size_t width_;
    std::function<bool(Lane &)> refill_;
    std::function<void(Lane &, RunMetrics &&)> complete_;
    obs::Registry *registry_;
};

} // namespace coolcmp

#endif // COOLCMP_CORE_BATCH_RUNNER_HH
