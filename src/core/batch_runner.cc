#include "core/batch_runner.hh"

#include <algorithm>

#include "thermal/batched.hh"
#include "util/logging.hh"

namespace coolcmp {

BatchRunner::BatchRunner(
    std::size_t width, std::function<bool(Lane &)> refill,
    std::function<void(Lane &, RunMetrics &&)> complete,
    obs::Registry *registry)
    : width_(std::max<std::size_t>(width, 1)),
      refill_(std::move(refill)), complete_(std::move(complete)),
      registry_(registry)
{
    if (!refill_ || !complete_)
        fatal("BatchRunner needs refill and complete callbacks");
}

void
BatchRunner::run()
{
    std::vector<Lane> lanes;
    lanes.reserve(width_);
    std::vector<ZohPropagator *> solvers;
    solvers.reserve(width_);
    std::vector<const Vector *> gathered;
    gathered.reserve(width_);
    std::unique_ptr<BatchedZohPropagator> batched;
    bool exhausted = false;

    // Runner-side phase accumulator: queue pulls, input packing, the
    // shared GEMM, and lane retirement. The per-lane simulators time
    // their own phases; BatchCommit/QueueWait also span the lanes'
    // once-per-run finishRun/beginRun (microseconds against a run's
    // hundreds of milliseconds of stepping — not worth untangling).
    obs::PhaseProfile profileSlots;
    obs::PhaseProfile *profile = registry_ ? &profileSlots : nullptr;

    for (;;) {
        // Retire finished lanes (a lane is also "finished" straight
        // after beginRun when the configured duration is zero steps).
        {
            obs::ScopedPhase timer(profile, obs::Phase::BatchCommit);
            for (std::size_t i = 0; i < lanes.size();) {
                if (lanes[i].sim->done()) {
                    complete_(lanes[i], lanes[i].sim->finishRun());
                    lanes.erase(lanes.begin() +
                                static_cast<std::ptrdiff_t>(i));
                } else {
                    ++i;
                }
            }
        }

        // Refill empty lanes from the pending queue (the callback
        // owns cache probes and simulator construction, so QueueWait
        // is where per-job setup cost shows up in batched sweeps).
        {
            obs::ScopedPhase timer(profile, obs::Phase::QueueWait);
            while (!exhausted && lanes.size() < width_) {
                Lane lane;
                if (!refill_(lane)) {
                    exhausted = true;
                    break;
                }
                lane.sim->beginRun();
                lanes.push_back(std::move(lane));
            }
        }
        if (lanes.empty())
            break;

        // One lock-step: every lane gathers its powers, one GEMM
        // advances every thermal state, every lane runs its control
        // loop. The phases never couple lanes, so each trajectory is
        // bit-identical to running that simulator alone.
        solvers.clear();
        gathered.clear();
        for (Lane &lane : lanes) {
            gathered.push_back(&lane.sim->gatherPowers());
            solvers.push_back(&lane.sim->propagator());
        }
        {
            obs::ScopedPhase timer(profile, obs::Phase::BatchPack);
            for (std::size_t i = 0; i < lanes.size(); ++i)
                solvers[i]->setInputs(*gathered[i]);
        }
        {
            obs::ScopedPhase timer(profile, obs::Phase::StepThermal);
            if (!batched)
                batched = std::make_unique<BatchedZohPropagator>(
                    solvers.front()->discretization(), width_);
            batched->step(solvers);
        }
        for (Lane &lane : lanes)
            lane.sim->finishStep();
    }

    if (profile)
        profile->flushTo(*registry_);
}

} // namespace coolcmp
