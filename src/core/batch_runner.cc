#include "core/batch_runner.hh"

#include <algorithm>

#include "thermal/batched.hh"
#include "util/logging.hh"

namespace coolcmp {

BatchRunner::BatchRunner(
    std::size_t width, std::function<bool(Lane &)> refill,
    std::function<void(Lane &, RunMetrics &&)> complete)
    : width_(std::max<std::size_t>(width, 1)),
      refill_(std::move(refill)), complete_(std::move(complete))
{
    if (!refill_ || !complete_)
        fatal("BatchRunner needs refill and complete callbacks");
}

void
BatchRunner::run()
{
    std::vector<Lane> lanes;
    lanes.reserve(width_);
    std::vector<ZohPropagator *> solvers;
    solvers.reserve(width_);
    std::unique_ptr<BatchedZohPropagator> batched;
    bool exhausted = false;

    for (;;) {
        // Retire finished lanes (a lane is also "finished" straight
        // after beginRun when the configured duration is zero steps).
        for (std::size_t i = 0; i < lanes.size();) {
            if (lanes[i].sim->done()) {
                complete_(lanes[i], lanes[i].sim->finishRun());
                lanes.erase(lanes.begin() +
                            static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }

        // Refill empty lanes from the pending queue.
        while (!exhausted && lanes.size() < width_) {
            Lane lane;
            if (!refill_(lane)) {
                exhausted = true;
                break;
            }
            lane.sim->beginRun();
            lanes.push_back(std::move(lane));
        }
        if (lanes.empty())
            return;

        // One lock-step: every lane gathers its powers, one GEMM
        // advances every thermal state, every lane runs its control
        // loop. The phases never couple lanes, so each trajectory is
        // bit-identical to running that simulator alone.
        solvers.clear();
        for (Lane &lane : lanes) {
            const Vector &powers = lane.sim->gatherPowers();
            lane.sim->propagator().setInputs(powers);
            solvers.push_back(&lane.sim->propagator());
        }
        if (!batched)
            batched = std::make_unique<BatchedZohPropagator>(
                solvers.front()->discretization(), width_);
        batched->step(solvers);
        for (Lane &lane : lanes)
            lane.sim->finishStep();
    }
}

} // namespace coolcmp
