#include "core/throttle.hh"

#include <algorithm>
#include <cmath>

#include "fault/injector.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace coolcmp {

ThrottleDomain::ThrottleDomain(ThrottleMechanism mechanism,
                               const DtmConfig &config, int id)
    : mechanism_(mechanism), config_(config), id_(id)
{
    if (mechanism_ == ThrottleMechanism::Dvfs) {
        // The paper's discrete PI law with the negative-gain
        // convention: u[n] = u[n-1] - Kp e[n] + (Kp - Ki dt) e[n-1]
        // with e = measured - setpoint, clipped to [minScale, 1].
        const DiscretePidCoeffs coeffs = negate(
            discretizePidZoh(config.piGains, config.stepSeconds()));
        pi_ = std::make_unique<DiscretePidController>(
            coeffs, config.minFreqScale, 1.0, 1.0);
    }
}

void
ThrottleDomain::update(double hottestTemp, double now)
{
    if (mechanism_ == ThrottleMechanism::StopGo) {
        if (now >= unavailableUntil_ &&
            hottestTemp >= config_.stopGoTrip) {
            // Thermal trap: freeze the domain for the full stall. A
            // slipping stop-go timer stretches (or cuts short) the
            // stall it was meant to hold.
            double stall = config_.stopGoStall;
            if (injector_)
                stall = injector_->stallDuration(stall, id_, now);
            unavailableUntil_ = now + stall;
            ++actuations_;
            if (config_.tracer)
                config_.tracer->stopGoTrip(now, id_, hottestTemp,
                                           unavailableUntil_);
        }
        return;
    }

    // DVFS: advance the PI regulator every sample; actuate the PLL
    // only when the commanded change exceeds the minimum transition
    // (Table 3: 2% of range), paying the 10 us relock penalty.
    const double error = hottestTemp - config_.dvfsSetpoint;
    // The integral state *is* the clipped previous output (the
    // anti-windup trick of Section 4.2), so record it as such.
    const double integral = pi_->output();
    const double commanded = pi_->update(error);
    if (config_.tracer)
        config_.tracer->piUpdate(now, id_, error, integral, commanded);
    if (std::abs(commanded - freqScale_) >= config_.minTransition) {
        double penalty = config_.dvfsTransitionPenalty;
        if (injector_) {
            const FaultInjector::DvfsOutcome outcome =
                injector_->onDvfsTransition(id_, now);
            if (!outcome.apply) {
                // Sticking PLL: the command is dropped on the floor.
                // The regulator keeps integrating and re-issues a
                // transition at the next sample if still warranted.
                return;
            }
            penalty += outcome.extraLag;
        }
        const double from = freqScale_;
        freqScale_ = commanded;
        unavailableUntil_ =
            std::max(unavailableUntil_, now + penalty);
        ++actuations_;
        if (config_.tracer)
            config_.tracer->pllRelock(now, id_, from, commanded,
                                      unavailableUntil_);
    }
}

void
ThrottleDomain::clearStall(double now)
{
    if (mechanism_ != ThrottleMechanism::StopGo)
        return;
    if (unavailableUntil_ > now && config_.tracer)
        config_.tracer->stallCleared(now, id_, unavailableUntil_);
    unavailableUntil_ = std::min(unavailableUntil_, now);
}

void
ThrottleDomain::initializeScale(double scale)
{
    if (mechanism_ != ThrottleMechanism::Dvfs)
        return;
    scale = std::clamp(scale, config_.minFreqScale, 1.0);
    const DiscretePidCoeffs coeffs = negate(
        discretizePidZoh(config_.piGains, config_.stepSeconds()));
    pi_ = std::make_unique<DiscretePidController>(
        coeffs, config_.minFreqScale, 1.0, scale);
    freqScale_ = scale;
}

void
ThrottleDomain::reset()
{
    freqScale_ = 1.0;
    unavailableUntil_ = 0.0;
    actuations_ = 0;
    if (pi_)
        pi_->reset();
}

ThrottleBank::ThrottleBank(ThrottleMechanism mechanism,
                           ControlScope scope, int numCores,
                           const DtmConfig &config)
    : scope_(scope)
{
    if (numCores <= 0)
        fatal("ThrottleBank requires at least one core");
    const int domains =
        scope == ControlScope::Global ? 1 : numCores;
    domains_.reserve(static_cast<std::size_t>(domains));
    for (int d = 0; d < domains; ++d)
        domains_.emplace_back(mechanism, config,
                              scope == ControlScope::Global ? -1 : d);
}

void
ThrottleBank::update(const std::vector<double> &coreHottest, double now)
{
    if (scope_ == ControlScope::Global) {
        double chipMax = -1e9;
        for (double t : coreHottest)
            chipMax = std::max(chipMax, t);
        domains_[0].update(chipMax, now);
        return;
    }
    if (coreHottest.size() != domains_.size())
        panic("per-core temperature count mismatch");
    for (std::size_t c = 0; c < domains_.size(); ++c)
        domains_[c].update(coreHottest[c], now);
}

const ThrottleDomain &
ThrottleBank::domainFor(int core) const
{
    if (scope_ == ControlScope::Global)
        return domains_[0];
    return domains_.at(static_cast<std::size_t>(core));
}

double
ThrottleBank::freqScale(int core) const
{
    return domainFor(core).freqScale();
}

double
ThrottleBank::voltageScale(int core) const
{
    return domainFor(core).voltageScale();
}

double
ThrottleBank::unavailableUntil(int core) const
{
    return domainFor(core).unavailableUntil();
}

void
ThrottleBank::clearStall(int core, double now)
{
    if (scope_ == ControlScope::Global) {
        domains_[0].clearStall(now);
        return;
    }
    domains_.at(static_cast<std::size_t>(core)).clearStall(now);
}

void
ThrottleBank::initializeScale(double scale)
{
    for (auto &domain : domains_)
        domain.initializeScale(scale);
}

std::uint64_t
ThrottleBank::actuations() const
{
    std::uint64_t total = 0;
    for (const auto &domain : domains_)
        total += domain.actuations();
    return total;
}

void
ThrottleBank::setFaultInjector(FaultInjector *injector)
{
    for (auto &domain : domains_)
        domain.setFaultInjector(injector);
}

} // namespace coolcmp
