/**
 * @file
 * Immutable physical chip model shared across DTM simulations: the
 * floorplan, the RC thermal network, the precomputed exact-step
 * discretization, and the leakage calibration. Building the matrix
 * exponential once and sharing it across the 144 policy-workload runs
 * of the evaluation is what makes the full sweep affordable.
 */

#ifndef COOLCMP_CORE_CHIP_MODEL_HH
#define COOLCMP_CORE_CHIP_MODEL_HH

#include <map>
#include <memory>
#include <mutex>

#include "core/dtm_config.hh"
#include "power/leakage.hh"
#include "thermal/floorplan.hh"
#include "thermal/floorplan_spec.hh"
#include "thermal/rc_network.hh"
#include "thermal/reduced.hh"
#include "thermal/transient.hh"

namespace coolcmp {

/** Shared physical state of one chip configuration. */
class ChipModel
{
  public:
    /**
     * Build the CMP chip of the paper's Table 3.
     * @param numCores 1, 2 or 4
     * @param config DTM configuration (package, leakage, step length)
     */
    ChipModel(int numCores, const DtmConfig &config);

    /** Build from an explicit floorplan (e.g. the mobile chip);
     *  wrapped into a spec with default (homogeneous) cores. */
    ChipModel(Floorplan floorplan, const DtmConfig &config);

    /**
     * Build from a data-driven spec: geometry and layers materialize
     * into the RC network (with inter-layer coupling for stacked
     * dies), per-core calibration feeds the power and leakage models.
     * The spec must be valid (validate() first for wire input).
     */
    ChipModel(const FloorplanSpec &spec, const DtmConfig &config);

    int numCores() const { return floorplan_.numCores(); }
    const Floorplan &floorplan() const { return floorplan_; }
    const RcNetwork &network() const { return network_; }
    const LeakageModel &leakage() const { return leakage_; }

    /** The spec this chip was built from. */
    const FloorplanSpec &spec() const { return spec_; }

    /** Per-core descriptor (class and calibration scales). */
    const CoreSpec &coreSpec(int core) const
    {
        return spec_.cores.at(static_cast<std::size_t>(core));
    }

    /** Canonical spec text (what travels on the wire). */
    const std::string &specText() const { return specText_; }

    /** FNV-1a hash of the canonical spec text; configKey() mixes this
     *  so caches and journals are keyed per chip topology. */
    std::uint64_t specHash() const { return specHash_; }

    /** Shared exact-step discretization at config.stepSeconds(). */
    std::shared_ptr<const ZohDiscretization> discretization() const
    {
        return disc_;
    }

    /**
     * Make a fresh transient solver over this chip. Solvers at the
     * standard step share disc_; other steps are discretized once and
     * memoized, so concurrent simulators never repeat the expensive
     * matrix exponential. Thread-safe.
     *
     * romTolerance > 0 returns a ReducedZohPropagator over the shared
     * reduced model selected to keep die temperatures within that
     * many kelvin of the dense model (see reducedModel()); 0 returns
     * the full dense propagator.
     */
    std::unique_ptr<ZohPropagator>
    makeSolver(double dt, double romTolerance = 0.0) const;

    /**
     * Shared reduced-order model for (dt, tolerance): the eigenbasis
     * and mode selection run once and are memoized, so every lane of
     * a sweep reuses them the same way disc_ is reused. Thread-safe.
     */
    std::shared_ptr<const ReducedThermalModel>
    reducedModel(double dt, double tolerance) const;

    /** Floorplan block index of (core, unit). */
    std::size_t blockOf(int core, UnitKind kind) const;

    /** Floorplan block index of the shared L2. */
    std::size_t l2Block() const { return l2Block_; }

  private:
    FloorplanSpec spec_; ///< declared before floorplan_: it feeds it
    std::string specText_;
    std::uint64_t specHash_;
    Floorplan floorplan_;
    RcNetwork network_;
    LeakageModel leakage_;
    double stepSeconds_;
    std::shared_ptr<const ZohDiscretization> disc_;
    mutable std::mutex discCacheMutex_;
    mutable std::map<double, std::shared_ptr<const ZohDiscretization>>
        discCache_; ///< non-standard steps, keyed by dt
    mutable std::map<std::pair<double, double>,
                     std::shared_ptr<const ReducedThermalModel>>
        reducedCache_; ///< keyed by (dt, tolerance)
    std::vector<std::size_t> blockIndex_; ///< [core][unit]
    std::size_t l2Block_;

    void buildIndex();
};

} // namespace coolcmp

#endif // COOLCMP_CORE_CHIP_MODEL_HH
