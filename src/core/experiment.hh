/**
 * @file
 * Experiment driver: wires the trace builder, chip model, and DTM
 * simulator together for the paper's evaluation sweeps, sharing the
 * expensive immutable pieces (power traces, matrix exponentials)
 * across runs.
 */

#ifndef COOLCMP_CORE_EXPERIMENT_HH
#define COOLCMP_CORE_EXPERIMENT_HH

#include <algorithm>
#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dtm_config.hh"
#include "core/dtm_simulator.hh"
#include "core/metrics.hh"
#include "core/taxonomy.hh"
#include "obs/run_report.hh"
#include "obs/snapshot.hh"
#include "power/trace_builder.hh"
#include "thermal/floorplan_spec.hh"
#include "workload/workloads.hh"

namespace coolcmp::obs {
class TraceSession;
} // namespace coolcmp::obs

namespace coolcmp {

class SweepJournal;

/** One (workload, policy) run request for an Experiment sweep. */
struct RunJob
{
    Workload workload;
    PolicyConfig policy;
    /** On-disk result cache directory; empty disables caching. */
    std::string resultDir;
};

/** Thrown inside a supervised job when it overruns its deadline. */
class JobTimeout : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Sweep-level execution options. Every future knob lands here instead
 * of growing another defaulted run() parameter.
 */
struct SweepOptions
{
    /** Worker count; 0 reads COOLCMP_THREADS and falls back to
     *  hardware_concurrency. */
    std::size_t threads = 0;

    /**
     * Crash-safe journal file; empty disables journaling. Completed
     * jobs are checkpointed (atomic tmp+rename) as they finish, and a
     * re-run of the same request replays them instead of recomputing
     * — see SweepJournal for the resume contract.
     */
    std::string journalPath;

    /** Per-job wall-clock deadline in seconds; 0 disables. A job past
     *  its deadline is abandoned and (maybe) retried. */
    double jobTimeoutSeconds = 0.0;

    /** Attempts per job (1 = no retries). A job that times out on its
     *  last attempt is marked failed and returns zeroed metrics. */
    int maxAttempts = 1;

    /** Base sleep between attempts, seconds (linear backoff:
     *  attempt k waits k * backoff). */
    double retryBackoffSeconds = 0.05;

    /** Reduced-order thermal override for this sweep: >= 0 replaces
     *  DtmConfig::romTolerance (0 forces the dense solver, > 0 the
     *  modal solver at that kelvin tolerance); the default -1
     *  inherits the experiment config. Part of the effective config,
     *  so cached results key on it.
     *
     *  An explicit 0 also disables the automatic reduced-order
     *  promotion of large floorplans (COOLCMP_ROM_AUTO); -1 leaves
     *  the auto decision to the experiment. */
    double romTolerance = -1.0;

    /**
     * Chip description for this sweep: a registered generator name
     * ("paper4", "mesh16", "biglittle4+4", "stacked3d2x16") or full
     * FloorplanSpec text. Empty inherits the experiment's default
     * chip (the paper's 4-core CMP). Part of the effective config —
     * the spec hash feeds configKey(), so caches, journals, and the
     * fleet protocol key per topology.
     */
    std::string floorplan;

    /** Empty when the options are coherent, else a diagnostic. */
    std::string validate() const;

    /** True when any supervision feature (journal, deadline, retry)
     *  is on; supervised sweeps take the sequential per-run path. */
    bool supervised() const
    {
        return !journalPath.empty() || jobTimeoutSeconds > 0.0 ||
            maxAttempts > 1;
    }
};

/**
 * A whole sweep as one value: the job list plus its SweepOptions,
 * built fluently. This is the one entry point for multi-run
 * execution — Experiment::run(RunRequest) — replacing the
 * ever-growing parameter lists of the old sweep overloads:
 *
 *   auto results = experiment.run(RunRequest()
 *       .add(workload, policy)
 *       .cacheResults(".coolcmp-results")
 *       .journal(".coolcmp-sweep.journal")
 *       .timeout(120.0)
 *       .retry(3));
 */
class RunRequest
{
  public:
    RunRequest() = default;
    explicit RunRequest(std::vector<RunJob> jobs)
        : jobs_(std::move(jobs))
    {
    }

    /** Append one (workload, policy) job (fluent). */
    RunRequest &add(Workload workload, PolicyConfig policy,
                    std::string resultDir = {})
    {
        jobs_.push_back({std::move(workload), std::move(policy),
                         std::move(resultDir)});
        return *this;
    }

    /** Replace the whole job list. */
    RunRequest &withJobs(std::vector<RunJob> jobs)
    {
        jobs_ = std::move(jobs);
        return *this;
    }

    /** Point every job at one on-disk result cache directory. */
    RunRequest &cacheResults(const std::string &dir)
    {
        for (RunJob &job : jobs_)
            job.resultDir = dir;
        return *this;
    }

    RunRequest &threads(std::size_t n)
    {
        options_.threads = n;
        return *this;
    }

    /** Enable the crash-safe resume journal (see SweepOptions). */
    RunRequest &journal(std::string path)
    {
        options_.journalPath = std::move(path);
        return *this;
    }

    /** Per-job wall-clock deadline, seconds (0 disables). */
    RunRequest &timeout(double seconds)
    {
        options_.jobTimeoutSeconds = seconds;
        return *this;
    }

    /** Bounded retry: up to `maxAttempts` tries per job with linear
     *  backoff of `backoffSeconds` between them. */
    RunRequest &retry(int maxAttempts, double backoffSeconds = 0.05)
    {
        options_.maxAttempts = maxAttempts;
        options_.retryBackoffSeconds = backoffSeconds;
        return *this;
    }

    /** Override the reduced-order tolerance for this sweep (see
     *  SweepOptions::romTolerance). */
    RunRequest &reducedTolerance(double kelvin)
    {
        options_.romTolerance = kelvin;
        return *this;
    }

    /** Run this sweep on the given chip description: a registered
     *  generator name or full spec text (see
     *  SweepOptions::floorplan). */
    RunRequest &floorplan(std::string nameOrText)
    {
        options_.floorplan = std::move(nameOrText);
        return *this;
    }

    /** Same, from a spec value (serialized to canonical text). */
    RunRequest &floorplan(const FloorplanSpec &spec)
    {
        options_.floorplan = spec.toText();
        return *this;
    }

    RunRequest &withOptions(SweepOptions options)
    {
        options_ = std::move(options);
        return *this;
    }

    /**
     * The sub-range [lo, hi) of the job list as its own request —
     * the unit of work a fleet worker runs for one lease. Options
     * carry over except the journal path: journaling a whole sweep
     * is the coordinator's job, and two slices writing one journal
     * file would reject each other's headers (different job counts).
     * Because every simulator owns its RNG streams, running slices
     * on separate processes and concatenating the results is
     * bit-identical to running the full request in one process.
     */
    RunRequest slice(std::size_t lo, std::size_t hi) const
    {
        RunRequest out;
        if (lo < hi && lo < jobs_.size()) {
            hi = std::min(hi, jobs_.size());
            out.jobs_.assign(jobs_.begin() +
                                 static_cast<std::ptrdiff_t>(lo),
                             jobs_.begin() +
                                 static_cast<std::ptrdiff_t>(hi));
        }
        out.options_ = options_;
        out.options_.journalPath.clear();
        return out;
    }

    const std::vector<RunJob> &jobs() const { return jobs_; }
    const SweepOptions &options() const { return options_; }

    /** Empty when the request is runnable, else a diagnostic (also
     *  checked by Experiment::run, which dies on an invalid one). */
    std::string validate() const;

  private:
    std::vector<RunJob> jobs_;
    SweepOptions options_;
};

/** Shared context for a family of DTM runs on the 4-core CMP. */
class Experiment
{
  public:
    explicit Experiment(const DtmConfig &config = {},
                        const TraceBuilderConfig &traceConfig = {});

    const DtmConfig &config() const { return config_; }
    std::shared_ptr<const ChipModel> chip() const { return chip_; }

    /** Power trace for a benchmark (built once, then shared).
     *  Thread-safe; concurrent callers build distinct traces in
     *  parallel and block only on the trace they need. */
    std::shared_ptr<const PowerTrace> trace(const std::string &name);

    /** Build several benchmark traces concurrently (see
     *  SweepOptions::threads for the worker-count convention). */
    void prefetchTraces(const std::vector<std::string> &names,
                        std::size_t threads = 0);

    /** Build a simulator for one workload and policy. */
    std::unique_ptr<DtmSimulator> makeSimulator(
        const Workload &workload, const PolicyConfig &policy);

    /**
     * Build a simulator with explicit observability sinks (overriding
     * whatever the experiment config carries). Either may be null.
     */
    std::unique_ptr<DtmSimulator> makeSimulator(
        const Workload &workload, const PolicyConfig &policy,
        obs::Tracer *tracer, obs::Registry *registry);

    /**
     * Attach a trace session: every subsequent sweep job gets its
     * own event tracer and wall-clock span, the session registry
     * collects sweep metrics (queue depth, job count), and exporters
     * can turn the session into a Chrome trace afterwards. Borrowed;
     * must outlive the runs. Pass nullptr to detach.
     */
    void attachSession(obs::TraceSession *session)
    {
        session_ = session;
    }

    obs::TraceSession *session() const { return session_; }

    /**
     * Write a JSON run report (obs::RunReport) to this path after
     * every run(RunRequest); empty disables the file. Initialized from
     * COOLCMP_RUN_REPORT, so sweeps can opt in without code changes.
     * The in-memory report is always available via lastRunReport().
     */
    void setRunReportPath(std::string path)
    {
        runReportPath_ = std::move(path);
    }

    const std::string &runReportPath() const { return runReportPath_; }

    /** Report of the most recent run(RunRequest) (default-constructed
     *  until
     *  one completes). Phase breakdown and busy/step totals need an
     *  attached registry (session or config); job health columns come
     *  from the returned metrics and are always filled. */
    const obs::RunReport &lastRunReport() const { return lastReport_; }

    /** Run one workload under one policy. */
    RunMetrics run(const Workload &workload, const PolicyConfig &policy);

    /**
     * Run with an on-disk result cache: benches regenerating several
     * of the paper's tables share hundreds of (workload, policy) runs,
     * so completed runs are memoized under resultDir keyed by a hash
     * of every configuration input. Pass an empty dir to disable.
     */
    RunMetrics runCached(const Workload &workload,
                         const PolicyConfig &policy,
                         const std::string &resultDir =
                             ".coolcmp-results");

    /** Hash of the full experiment configuration (including the
     *  sensor model, the fault plan, and the current chip's
     *  floorplan spec). */
    std::uint64_t configKey() const;

    /**
     * The configKey a run(request) will execute under, after folding
     * in the request's romTolerance / floorplan overrides and the
     * automatic reduced-order decision. This is what journals, result
     * caches, and the fleet coordinator must stamp so a worker
     * replaying the request computes the same key. Fatal on an
     * unresolvable floorplan (validate the request first).
     */
    std::uint64_t effectiveConfigKey(const RunRequest &request);

    /**
     * Shared ChipModel for a floorplan argument (generator name or
     * spec text), memoized by canonical spec text so every sweep on
     * one topology reuses one matrix exponential. Thread-safe; fatal
     * on an invalid spec.
     */
    std::shared_ptr<const ChipModel>
    chipFor(const std::string &nameOrText);

    /**
     * Execute a sweep: fan the request's jobs over a worker pool.
     * Runs are bit-identical to the serial path (each simulator owns
     * its own state and RNG streams); results land in job order
     * regardless of scheduling. Power traces, the discretization
     * cache, and the on-disk result cache are shared safely across
     * workers.
     *
     * Unsupervised requests co-step jobs in batched lanes — each
     * worker lock-steps up to batchWidth() simulators through one
     * GEMM per step (see BatchRunner) — which is several times faster
     * than stepping them one by one. A single job, a batch width of
     * 1, or a supervised request (journal, timeout, or retry on — the
     * per-job deadline needs per-job stepping) takes the sequential
     * per-run path. Cache files, journal entries, tracer spans, and
     * the returned metrics are identical either way.
     *
     * Dies (fatal) on an invalid request; check request.validate()
     * first to handle errors gracefully.
     *
     * @return metrics in job order; failed jobs (deadline exhausted
     * after every attempt) hold default RunMetrics and are flagged in
     * lastRunReport().
     */
    std::vector<RunMetrics> run(const RunRequest &request);

    /**
     * Lanes per worker for batched sweep dispatch: the
     * COOLCMP_BATCH environment variable (clamped to [1, 64]; 0 or 1
     * disables batching), default 8. Read per call so tests and
     * sweeps can switch modes at runtime.
     */
    static std::size_t batchWidth();

    /**
     * Run one policy over all Table 4 workloads (in parallel, via
     * run(RunRequest)).
     * @return per-workload metrics in Table 4 order.
     */
    std::vector<RunMetrics> runAllWorkloads(const PolicyConfig &policy);

    /** Average BIPS across a set of runs. */
    static double averageBips(const std::vector<RunMetrics> &runs);

    /** Average duty cycle across a set of runs. */
    static double averageDuty(const std::vector<RunMetrics> &runs);

    /**
     * Mean per-workload throughput ratio of `runs` over `baseline`
     * (the paper's "relative throughput", normalized workload by
     * workload to distributed stop-go).
     */
    static double relativeThroughput(
        const std::vector<RunMetrics> &runs,
        const std::vector<RunMetrics> &baseline);

  private:
    using TraceFuture =
        std::shared_future<std::shared_ptr<const PowerTrace>>;

    DtmConfig config_;
    TraceBuilder builder_;
    std::shared_ptr<const ChipModel> chip_;
    obs::TraceSession *session_ = nullptr;
    std::string runReportPath_;
    obs::RunReport lastReport_;

    /** Per-job supervision outcome, filled by the sweep paths and
     *  folded into the run report. */
    struct JobStatus
    {
        std::vector<char> fromCache;
        std::vector<char> resumed;
        std::vector<char> failed;
        std::vector<std::uint32_t> attempts;

        explicit JobStatus(std::size_t n)
            : fromCache(n, 0), resumed(n, 0), failed(n, 0),
              attempts(n, 1)
        {
        }
    };

    /** One job, cached or fresh, with explicit observability sinks.
     *  `fromCache`, when non-null, reports whether the result came
     *  from the on-disk cache. A positive `timeoutSeconds` arms the
     *  cooperative per-job deadline (throws JobTimeout). */
    RunMetrics runJob(const RunJob &job, obs::Tracer *tracer,
                      obs::Registry *registry,
                      bool *fromCache = nullptr,
                      double timeoutSeconds = 0.0);

    /** Result-cache file for a job; empty when caching is disabled. */
    std::string cachePath(const RunJob &job) const;

    /** Batched lane dispatch over the whole job list (the sweep body
     *  when batching is enabled and supervision is off). */
    void runManyBatched(const std::vector<RunJob> &jobs,
                        std::size_t threads, std::size_t width,
                        std::vector<RunMetrics> &out,
                        JobStatus &status);

    /** Sequential per-run dispatch; handles journal replay/checkpoint
     *  and per-job deadline+retry when the options ask for them. */
    void runManySequential(const std::vector<RunJob> &jobs,
                           const SweepOptions &options,
                           SweepJournal *journal,
                           std::vector<RunMetrics> &out,
                           JobStatus &status);

    /** Fill lastReport_ from the sweep's outputs and the registry
     *  deltas captured around it. */
    void buildRunReport(const std::vector<RunJob> &jobs,
                        const std::vector<RunMetrics> &out,
                        const JobStatus &status,
                        const obs::Registry *registry,
                        const obs::MetricsSnapshot &before,
                        double wallSeconds);

    /**
     * Swap the request's floorplan/romTolerance overrides into
     * config_/chip_ (including the COOLCMP_ROM_AUTO promotion) and
     * return the previous values for restoration. Shared by run()
     * and effectiveConfigKey() so both see the same effective
     * configuration.
     */
    struct SavedEnvironment
    {
        double romTolerance;
        std::shared_ptr<const ChipModel> chip;
        bool romAuto = false; ///< auto promotion fired (output)
    };

    SavedEnvironment applyRequestEnvironment(const SweepOptions &options);
    void restoreEnvironment(const SavedEnvironment &saved);

    /**
     * Per-benchmark trace memo. Futures make concurrent lookups safe
     * and build each trace exactly once: the first caller claims the
     * slot under the mutex and builds outside it while later callers
     * block on the shared future.
     */
    std::mutex tracesMutex_;
    std::map<std::string, TraceFuture> traces_;

    /** Chip models per canonical spec text (see chipFor). */
    std::mutex chipCacheMutex_;
    std::map<std::string, std::shared_ptr<const ChipModel>> chipCache_;
};

/** Canonical 16-digit hex rendering of an Experiment::configKey()
 *  (the form journals, caches, and the fleet protocol exchange). */
std::string configKeyHex(std::uint64_t key);

/**
 * Persist run metrics to a result-cache file. The header stamps the
 * schema version and the experiment's configKey so a stale cache
 * (older schema, or results computed under different constants) is
 * rejected and rebuilt instead of silently reused.
 */
bool saveRunMetrics(const std::string &path, const RunMetrics &m,
                    std::uint64_t configKey);

/**
 * Load run metrics written by saveRunMetrics. Returns false (after a
 * warning, unless the file simply does not exist) when the schema
 * version or config hash does not match @p configKey. A hit also
 * refreshes the file's mtime so the cache size bound (see
 * enforceResultCacheBound) evicts least-recently-USED entries, not
 * merely oldest-written ones.
 */
bool loadRunMetrics(const std::string &path, RunMetrics &m,
                    std::uint64_t configKey);

/** Result-cache size budget in bytes: COOLCMP_CACHE_MAX_MB
 *  megabytes (default 1024); 0 disables the bound. */
std::uint64_t resultCacheMaxBytes();

/**
 * Bound an on-disk result-cache directory: while the .metrics files
 * under @p dir exceed @p maxBytes, delete the least recently used
 * (oldest mtime; ties broken by path, so concurrent enforcers make
 * the same deterministic choice). Every save site calls this, which
 * keeps long sweep campaigns from growing the cache without limit.
 * Evictions are counted into the registry's "cache.evictions"
 * counter when one is attached.
 *
 * @return the number of files evicted.
 */
std::size_t enforceResultCacheBound(const std::string &dir,
                                    std::uint64_t maxBytes,
                                    obs::Registry *registry = nullptr);

/** Table 1 reproduction: mobile single-core steady-state thermals. */
struct MobileThermalReading
{
    std::string benchmark;
    std::string category;      ///< "SPECint"/"SPECfp"
    double steadyTemp = 0.0;   ///< diode reading, phase-weighted, C
    double minPhaseTemp = 0.0; ///< coolest phase steady state
    double maxPhaseTemp = 0.0; ///< hottest phase steady state
    bool oscillating = false;  ///< phases differ by > 2 C
};

/**
 * Measure the single-diode steady-state temperature of one benchmark
 * on the mobile (Pentium M-class) platform, following the Table 1
 * procedure: the reading is taken from an edge-of-die sensor and
 * rounded to 1 C.
 */
MobileThermalReading measureMobileSteadyState(
    const std::string &benchmark,
    const std::string &traceCacheDir = ".coolcmp-traces");

} // namespace coolcmp

#endif // COOLCMP_CORE_EXPERIMENT_HH
