#include "core/experiment.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <thread>

#include "core/batch_runner.hh"
#include "core/sweep_journal.hh"
#include "fault/fault_plan.hh"
#include "obs/exporter.hh"
#include "obs/registry.hh"
#include "obs/tracer.hh"
#include "thermal/sensor.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace coolcmp {

Experiment::Experiment(const DtmConfig &config,
                       const TraceBuilderConfig &traceConfig)
    : config_(config), builder_(traceConfig),
      chip_(std::make_shared<const ChipModel>(4, config_)),
      runReportPath_(envString("COOLCMP_RUN_REPORT"))
{
    if (traceConfig.power.nominalFreq != config.power.nominalFreq)
        fatal("trace and DTM configs disagree on nominal frequency");
}

std::shared_ptr<const PowerTrace>
Experiment::trace(const std::string &name)
{
    std::promise<std::shared_ptr<const PowerTrace>> promise;
    TraceFuture future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(tracesMutex_);
        auto it = traces_.find(name);
        if (it == traces_.end()) {
            future = promise.get_future().share();
            traces_.emplace(name, future);
            owner = true;
        } else {
            future = it->second;
        }
    }
    if (owner) {
        // Build outside the lock: trace generation is the expensive
        // cycle-level simulation, and other benchmarks' builds should
        // proceed concurrently.
        try {
            promise.set_value(std::make_shared<const PowerTrace>(
                builder_.build(findProfile(name))));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

void
Experiment::prefetchTraces(const std::vector<std::string> &names,
                           std::size_t threads)
{
    parallelFor(names.size(), threads,
                [&](std::size_t i) { trace(names[i]); });
}

std::unique_ptr<DtmSimulator>
Experiment::makeSimulator(const Workload &workload,
                          const PolicyConfig &policy)
{
    return makeSimulator(workload, policy, config_.tracer,
                         config_.registry);
}

std::unique_ptr<DtmSimulator>
Experiment::makeSimulator(const Workload &workload,
                          const PolicyConfig &policy,
                          obs::Tracer *tracer, obs::Registry *registry)
{
    if (workload.benchmarks.empty())
        fatal("workload '", workload.name, "' has no benchmarks");
    // The simulator needs one process per core. The paper's mixes
    // carry exactly four for the 4-core chip; on larger data-driven
    // floorplans the list cycles across cores (workload7 on mesh16
    // runs gzip on cores 0, 4, 8, 12, ...), which keeps every Table 4
    // workload runnable on every topology.
    const std::size_t processes =
        std::max(workload.benchmarks.size(),
                 static_cast<std::size_t>(chip_->numCores()));
    std::vector<std::shared_ptr<const PowerTrace>> traces;
    traces.reserve(processes);
    for (std::size_t i = 0; i < processes; ++i)
        traces.push_back(
            trace(workload.benchmarks[i % workload.benchmarks.size()]));
    DtmConfig config = config_;
    config.tracer = tracer;
    config.registry = registry;
    return std::make_unique<DtmSimulator>(chip_, policy, config,
                                          std::move(traces));
}

RunMetrics
Experiment::run(const Workload &workload, const PolicyConfig &policy)
{
    return makeSimulator(workload, policy)->run();
}

namespace {

void
mixBytes(std::uint64_t &hash, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
}

void
mixDouble(std::uint64_t &hash, double v)
{
    mixBytes(hash, &v, sizeof(v));
}

} // namespace

std::string
configKeyHex(std::uint64_t key)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

bool
saveRunMetrics(const std::string &path, const RunMetrics &m,
               std::uint64_t configKey)
{
    // Atomic tmp+rename so concurrent writers (sweep workers, or
    // several bench processes sharing the cache) never expose a
    // half-written file to a concurrent loadRunMetrics.
    return obs::atomicWriteFile(
        path, "result-cache", [&](std::ostream &out) {
            // Schema version + config hash: a reader built against
            // another schema, or an experiment with different
            // constants, must treat this file as a miss rather than
            // deserialize stale numbers.
            out << "coolcmp-metrics-v4 " << configKeyHex(configKey)
                << "\n";
            writeRunMetricsBody(out, m);
        });
}

bool
loadRunMetrics(const std::string &path, RunMetrics &m,
               std::uint64_t configKey)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string magic, key;
    if (!(in >> magic >> key))
        return false;
    if (magic != "coolcmp-metrics-v4") {
        warn("result cache ", path, " has schema '", magic,
             "', expected coolcmp-metrics-v4; rebuilding");
        return false;
    }
    if (key != configKeyHex(configKey)) {
        warn("result cache ", path, " was computed under config ", key,
             ", expected ", configKeyHex(configKey), "; rebuilding");
        return false;
    }
    if (!readRunMetricsBody(in, m))
        return false;
    // A hit counts as a use: refresh the mtime so the size bound
    // below evicts by recency of use, not by write order.
    std::error_code ec;
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now(), ec);
    return true;
}

std::uint64_t
resultCacheMaxBytes()
{
    // 0 disables the bound; the cap keeps MB * 2^20 within uint64.
    return static_cast<std::uint64_t>(envSizeT(
               "COOLCMP_CACHE_MAX_MB", 1024, 0, std::size_t{1} << 30))
        << 20;
}

std::size_t
enforceResultCacheBound(const std::string &dir, std::uint64_t maxBytes,
                        obs::Registry *registry)
{
    if (maxBytes == 0 || dir.empty())
        return 0;
    namespace fs = std::filesystem;
    struct Entry
    {
        fs::file_time_type mtime;
        std::string path;
        std::uint64_t size;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (it->path().extension() != ".metrics")
            continue;
        std::error_code statEc;
        const auto size = it->file_size(statEc);
        const auto mtime = it->last_write_time(statEc);
        if (statEc) // racing eviction/writer; skip
            continue;
        total += size;
        entries.push_back({mtime, it->path().string(), size});
    }
    if (total <= maxBytes)
        return 0;
    // Oldest use first; ties broken by path so concurrent enforcers
    // converge on the same victims instead of each deleting one half.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    std::size_t evicted = 0;
    for (const Entry &e : entries) {
        if (total <= maxBytes)
            break;
        std::error_code rmEc;
        if (fs::remove(e.path, rmEc) && !rmEc)
            ++evicted;
        // Count the bytes gone either way: a failed remove usually
        // means another enforcer got there first.
        total -= e.size;
    }
    if (evicted && registry)
        registry->counter("cache.evictions").add(evicted);
    return evicted;
}

std::uint64_t
Experiment::configKey() const
{
    std::uint64_t hash = builder_.configKey();
    const DtmConfig &c = config_;
    for (double v : {c.thresholdTemp, c.stopGoTrip, c.dvfsSetpoint,
                     c.settleBand,
                     c.stopGoStall, c.piGains.kp, c.piGains.ki,
                     c.piGains.kd, c.minFreqScale, c.minTransition,
                     c.dvfsTransitionPenalty,
                     static_cast<double>(c.intervalCycles), c.duration,
                     c.romTolerance,
                     c.kernel.timerInterval,
                     c.kernel.migrationMinInterval,
                     c.kernel.migrationPenalty,
                     c.kernel.timeSliceQuantum,
                     c.sensors.noiseStddev, c.sensors.quantization,
                     c.initMargin,
                     static_cast<double>(c.hotspotChangeQuorum),
                     c.hotspotTempDelta, c.fallbackSpread,
                     c.package.dieThickness, c.package.convectionR,
                     c.package.ambient, c.package.dieCapFactor,
                     c.package.spreaderSide, c.package.sinkSide,
                     c.power.nominalFreq, c.power.nominalVdd,
                     c.leakage.densityAtRef, c.leakage.beta,
                     c.leakage.refTemp})
        mixDouble(hash, v);
    for (const auto &unit : c.power.units) {
        mixDouble(hash, unit.idleWatts);
        mixDouble(hash, unit.energyPerAccess);
    }
    // The sensor seed and the fault schedule change simulated
    // behaviour, so noisy-sensor and fault runs cache separately from
    // clean runs (and from each other).
    mixBytes(hash, &c.sensors.seed, sizeof(c.sensors.seed));
    c.faults.mixInto(hash);
    // The chip topology: results computed on one floorplan must never
    // satisfy a cache probe for another. The spec hash covers the
    // geometry, the layer stack, and the per-core calibration.
    const std::uint64_t spec = chip_->specHash();
    mixBytes(hash, &spec, sizeof(spec));
    return hash;
}

std::shared_ptr<const ChipModel>
Experiment::chipFor(const std::string &nameOrText)
{
    FloorplanSpec spec;
    const std::string error = resolveFloorplanSpec(nameOrText, spec);
    if (!error.empty())
        fatal("invalid floorplan: ", error);
    const std::string text = spec.toText();
    std::lock_guard<std::mutex> lock(chipCacheMutex_);
    auto &slot = chipCache_[text];
    if (!slot)
        slot = std::make_shared<const ChipModel>(spec, config_);
    return slot;
}

Experiment::SavedEnvironment
Experiment::applyRequestEnvironment(const SweepOptions &options)
{
    SavedEnvironment saved{config_.romTolerance, chip_, false};
    if (!options.floorplan.empty())
        chip_ = chipFor(options.floorplan);
    if (options.romTolerance >= 0.0)
        config_.romTolerance = options.romTolerance;
    // Automatic reduced-order promotion: large floorplans cross from
    // "dense exact step is cheap" to "dense exact step dominates the
    // sweep", so chips above the node-count threshold default to the
    // modal solver at a modest tolerance. An explicit request
    // tolerance (even 0) or a configured one wins; COOLCMP_ROM_AUTO=0
    // disables the promotion entirely.
    if (config_.romTolerance == 0.0 && options.romTolerance < 0.0) {
        const std::size_t threshold = envSizeT(
            "COOLCMP_ROM_AUTO", 512, 0,
            std::numeric_limits<std::size_t>::max());
        if (threshold > 0 &&
            chip_->network().numNodes() > threshold) {
            config_.romTolerance = 0.1;
            saved.romAuto = true;
        }
    }
    return saved;
}

void
Experiment::restoreEnvironment(const SavedEnvironment &saved)
{
    config_.romTolerance = saved.romTolerance;
    chip_ = saved.chip;
}

std::uint64_t
Experiment::effectiveConfigKey(const RunRequest &request)
{
    const SavedEnvironment saved =
        applyRequestEnvironment(request.options());
    const std::uint64_t key = configKey();
    restoreEnvironment(saved);
    return key;
}

RunMetrics
Experiment::runCached(const Workload &workload,
                      const PolicyConfig &policy,
                      const std::string &resultDir)
{
    return runJob({workload, policy, resultDir}, config_.tracer,
                  config_.registry);
}

std::string
Experiment::cachePath(const RunJob &job) const
{
    if (job.resultDir.empty())
        return {};
    return job.resultDir + "/" + job.workload.name + "-" +
        job.policy.slug() + "-" + configKeyHex(configKey()) +
        ".metrics";
}

namespace {

/**
 * Run a built simulator to completion under an optional wall-clock
 * deadline. The check is cooperative — every 64 steps of the manual
 * phase loop — so a hung job is abandoned within microseconds of real
 * work, without signals or a watchdog thread. Throws JobTimeout; the
 * abandoned simulator is simply destroyed (each owns all its state),
 * and a retry rebuilds a fresh one, so the re-run stays bit-identical
 * to a never-interrupted run.
 */
RunMetrics
runWithDeadline(DtmSimulator &sim, double timeoutSeconds,
                const std::string &what)
{
    if (timeoutSeconds <= 0.0)
        return sim.run();
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeoutSeconds));
    sim.beginRun();
    std::uint64_t n = 0;
    while (!sim.done()) {
        sim.gatherPowers();
        sim.stepThermal();
        sim.finishStep();
        if ((++n & 63u) == 0 &&
            std::chrono::steady_clock::now() >= deadline)
            throw JobTimeout("job " + what + " exceeded its " +
                             std::to_string(timeoutSeconds) +
                             " s deadline");
    }
    return sim.finishRun();
}

} // namespace

RunMetrics
Experiment::runJob(const RunJob &job, obs::Tracer *tracer,
                   obs::Registry *registry, bool *fromCache,
                   double timeoutSeconds)
{
    if (fromCache)
        *fromCache = false;

    // Simulator construction is the per-job setup cost; surface it in
    // the phase breakdown next to the run phases it precedes (the
    // batched path books construction under QueueWait instead).
    auto build = [&] {
        if (!registry)
            return makeSimulator(job.workload, job.policy, tracer,
                                 registry);
        const auto t0 = obs::PhaseProfile::Clock::now();
        auto sim = makeSimulator(job.workload, job.policy, tracer,
                                 registry);
        obs::PhaseProfile profile;
        profile.add(obs::Phase::Setup,
                    std::chrono::duration<double>(
                        obs::PhaseProfile::Clock::now() - t0)
                        .count());
        profile.flushTo(*registry);
        return sim;
    };
    const std::string what =
        job.workload.name + "/" + job.policy.slug();

    if (job.resultDir.empty())
        return runWithDeadline(*build(), timeoutSeconds, what);
    const std::uint64_t key = configKey();
    const std::string path = cachePath(job);
    RunMetrics cached;
    if (loadRunMetrics(path, cached, key)) {
        if (fromCache)
            *fromCache = true;
        return cached;
    }
    const RunMetrics fresh =
        runWithDeadline(*build(), timeoutSeconds, what);
    std::error_code ec;
    std::filesystem::create_directories(job.resultDir, ec);
    if (!saveRunMetrics(path, fresh, key))
        warn("cannot write result cache file ", path);
    enforceResultCacheBound(job.resultDir, resultCacheMaxBytes(),
                            registry);
    return fresh;
}

std::size_t
Experiment::batchWidth()
{
    return envSizeT("COOLCMP_BATCH", 8, 1, 64);
}

std::string
SweepOptions::validate() const
{
    if (jobTimeoutSeconds < 0.0)
        return "jobTimeoutSeconds must be >= 0";
    if (maxAttempts < 1)
        return "maxAttempts must be >= 1";
    if (retryBackoffSeconds < 0.0)
        return "retryBackoffSeconds must be >= 0";
    if (!floorplan.empty()) {
        FloorplanSpec spec;
        std::string error = resolveFloorplanSpec(floorplan, spec);
        if (error.empty())
            error = spec.validate();
        if (!error.empty())
            return "floorplan: " + error;
    }
    return {};
}

std::string
RunRequest::validate() const
{
    for (const RunJob &job : jobs_) {
        const bool blank = std::all_of(
            job.workload.benchmarks.begin(),
            job.workload.benchmarks.end(),
            [](const std::string &b) { return b.empty(); });
        if (blank)
            return "job '" + job.workload.name +
                "' has no benchmarks";
    }
    return options_.validate();
}

std::vector<RunMetrics>
Experiment::run(const RunRequest &request)
{
    const std::string error = request.validate();
    if (!error.empty())
        fatal("invalid RunRequest: ", error);
    const std::vector<RunJob> &jobs = request.jobs();
    const SweepOptions &options = request.options();

    std::vector<RunMetrics> out(jobs.size());
    JobStatus status(jobs.size());

    // Per-request overrides (floorplan chip, reduced-order tolerance,
    // and the automatic reduced-order promotion) are swapped into the
    // experiment for the duration of the sweep so configKey(), the
    // journal stamp, and the result cache all see the effective
    // values.
    const SavedEnvironment saved = applyRequestEnvironment(options);

    // Bracket the sweep with registry snapshots: the registry
    // accumulates across sweeps, so the run report is built from
    // deltas, not absolute values.
    obs::Registry *const reg =
        session_ ? &session_->registry() : config_.registry;
    obs::MetricsSnapshot before;
    if (reg)
        before = obs::takeSnapshot(*reg);
    const auto wall0 = std::chrono::steady_clock::now();

    std::unique_ptr<SweepJournal> journal;
    if (!options.journalPath.empty()) {
        journal = std::make_unique<SweepJournal>(
            options.journalPath, configKeyHex(configKey()),
            jobs.size());
        if (journal->load())
            inform("resuming sweep from ", options.journalPath, ": ",
                 journal->completedCount(), " of ", jobs.size(),
                 " jobs already complete");
    }

    // Group pending jobs by discretization: every simulator this
    // Experiment builds shares one chip and one step length, i.e. one
    // chip_->discretization(), so the whole job list is one batched
    // group. A singleton group (one job), a batch width of 1, or a
    // supervised request (the per-job deadline and the retry loop
    // need per-job stepping) takes the sequential per-run path.
    const std::size_t width = batchWidth();
    if (!options.supervised() && width > 1 && jobs.size() > 1)
        runManyBatched(jobs, options.threads, width, out, status);
    else
        runManySequential(jobs, options, journal.get(), out, status);

    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall0)
                            .count();
    buildRunReport(jobs, out, status, reg, before, wall);
    lastReport_.floorplan = chip_->spec().name;
    lastReport_.romTolerance = config_.romTolerance;
    lastReport_.romAuto = saved.romAuto;
    if (!runReportPath_.empty())
        obs::writeRunReportJson(runReportPath_, lastReport_);
    restoreEnvironment(saved);
    return out;
}

void
Experiment::runManySequential(const std::vector<RunJob> &jobs,
                              const SweepOptions &options,
                              SweepJournal *journal,
                              std::vector<RunMetrics> &out,
                              JobStatus &status)
{
    obs::TraceSession *const session = session_;
    obs::Registry *const reg =
        session ? &session->registry() : config_.registry;

    // Sweep-level pool metrics: how many jobs are still queued
    // (the worker-pool queue depth) and how many completed. Busy
    // seconds sum each worker's per-job wall time — the coverage
    // denominator for the phase breakdown.
    obs::Gauge *queueDepth = nullptr;
    obs::Counter *jobsDone = nullptr;
    obs::Gauge *busy =
        reg ? &reg->gauge("runmany.busy_seconds") : nullptr;
    std::atomic<std::size_t> pending{jobs.size()};
    if (session) {
        queueDepth = &session->registry().gauge("runmany.queue_depth");
        jobsDone = &session->registry().counter("runmany.jobs");
        queueDepth->set(static_cast<double>(jobs.size()));
    }
    auto finishJobObs = [&](std::size_t) {
        if (!session)
            return;
        jobsDone->add();
        queueDepth->set(static_cast<double>(
            pending.fetch_sub(1, std::memory_order_relaxed) - 1));
    };

    // One job under supervision: replay from the journal, else run
    // with the deadline armed, retrying with linear backoff, and
    // checkpoint the completion.
    auto runSupervised = [&](std::size_t i, obs::Tracer *tracer,
                             obs::Registry *registry) {
        const RunJob &job = jobs[i];
        if (journal && journal->has(i)) {
            out[i] = journal->result(i);
            status.resumed[i] = 1;
            return;
        }
        bool hit = false;
        for (int attempt = 1;; ++attempt) {
            status.attempts[i] = static_cast<std::uint32_t>(attempt);
            try {
                out[i] = runJob(job, tracer, registry, &hit,
                                options.jobTimeoutSeconds);
                break;
            } catch (const JobTimeout &e) {
                if (attempt >= options.maxAttempts) {
                    warn(e.what(), "; attempt ", attempt, " of ",
                         options.maxAttempts,
                         ", marking the job failed");
                    status.failed[i] = 1;
                    out[i] = RunMetrics{};
                    return;
                }
                warn(e.what(), "; attempt ", attempt, " of ",
                     options.maxAttempts, ", retrying");
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(
                        options.retryBackoffSeconds * attempt));
            }
        }
        status.fromCache[i] = hit ? 1 : 0;
        if (journal)
            journal->record(i, out[i]);
    };

    parallelFor(jobs.size(), options.threads, [&](std::size_t i) {
        const RunJob &job = jobs[i];
        const auto t0 = std::chrono::steady_clock::now();
        if (session) {
            const std::size_t span = session->beginJob(
                job.workload.name + "/" + job.policy.slug());
            runSupervised(i, session->jobTracer(span),
                          &session->registry());
            session->endJob(span);
        } else {
            runSupervised(i, config_.tracer, config_.registry);
        }
        finishJobObs(i);
        if (busy)
            busy->add(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
    });
}

void
Experiment::runManyBatched(const std::vector<RunJob> &jobs,
                           std::size_t threads, std::size_t width,
                           std::vector<RunMetrics> &out,
                           JobStatus &status)
{
    std::vector<char> &fromCache = status.fromCache;
    obs::TraceSession *const session = session_;
    obs::Registry *const reg =
        session ? &session->registry() : config_.registry;
    obs::Gauge *queueDepth = nullptr;
    obs::Counter *jobsDone = nullptr;
    obs::Gauge *busy =
        reg ? &reg->gauge("runmany.busy_seconds") : nullptr;
    std::atomic<std::size_t> pending{jobs.size()};
    if (session) {
        queueDepth = &session->registry().gauge("runmany.queue_depth");
        jobsDone = &session->registry().counter("runmany.jobs");
        queueDepth->set(static_cast<double>(jobs.size()));
    }

    const std::size_t nThreads =
        threads ? threads : ThreadPool::defaultThreadCount();
    // One BatchRunner per worker; spread the jobs so a small sweep on
    // a wide machine still uses every worker (lane count shrinks
    // before workers idle).
    const std::size_t workers =
        std::max<std::size_t>(1, std::min(nThreads, jobs.size()));
    const std::size_t laneWidth = std::min(
        width, std::max<std::size_t>(
                   1, (jobs.size() + workers - 1) / workers));

    std::atomic<std::size_t> nextJob{0};
    std::vector<std::size_t> spans(jobs.size(), 0);
    const std::uint64_t key = configKey();

    // Per-job completion bookkeeping shared by cache hits and fresh
    // runs: close the span, bump the sweep counters.
    auto finishJobObs = [&](std::size_t i) {
        if (!session)
            return;
        session->endJob(spans[i]);
        jobsDone->add();
        queueDepth->set(static_cast<double>(
            pending.fetch_sub(1, std::memory_order_relaxed) - 1));
    };

    auto worker = [&](std::size_t) {
        auto refill = [&](BatchRunner::Lane &lane) -> bool {
            for (;;) {
                const std::size_t i =
                    nextJob.fetch_add(1, std::memory_order_relaxed);
                if (i >= jobs.size())
                    return false;
                const RunJob &job = jobs[i];
                obs::Tracer *tracer = config_.tracer;
                obs::Registry *registry = config_.registry;
                if (session) {
                    spans[i] = session->beginJob(
                        job.workload.name + "/" + job.policy.slug());
                    tracer = session->jobTracer(spans[i]);
                    registry = &session->registry();
                }
                // The span covers the cache probe, as in the
                // sequential path; a hit never occupies a lane.
                RunMetrics cached;
                if (!job.resultDir.empty() &&
                    loadRunMetrics(cachePath(job), cached, key)) {
                    out[i] = cached;
                    fromCache[i] = 1;
                    finishJobObs(i);
                    continue;
                }
                lane.sim = makeSimulator(job.workload, job.policy,
                                         tracer, registry);
                lane.tag = i;
                return true;
            }
        };
        auto complete = [&](BatchRunner::Lane &lane,
                            RunMetrics &&metrics) {
            const RunJob &job = jobs[lane.tag];
            if (!job.resultDir.empty()) {
                std::error_code ec;
                std::filesystem::create_directories(job.resultDir,
                                                    ec);
                const std::string path = cachePath(job);
                if (!saveRunMetrics(path, metrics, key))
                    warn("cannot write result cache file ", path);
                enforceResultCacheBound(
                    job.resultDir, resultCacheMaxBytes(),
                    session ? &session->registry()
                            : config_.registry);
            }
            out[lane.tag] = std::move(metrics);
            finishJobObs(lane.tag);
        };
        const auto t0 = std::chrono::steady_clock::now();
        BatchRunner(laneWidth, refill, complete, reg).run();
        if (busy)
            busy->add(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
    };

    parallelFor(workers, workers, worker);
}

void
Experiment::buildRunReport(const std::vector<RunJob> &jobs,
                           const std::vector<RunMetrics> &out,
                           const JobStatus &status,
                           const obs::Registry *registry,
                           const obs::MetricsSnapshot &before,
                           double wallSeconds)
{
    obs::RunReport report;
    report.sweepName = "runMany";
    report.configKey = configKeyHex(configKey());
    report.jobs = jobs.size();
    report.wallSeconds = wallSeconds;

    std::vector<std::uint64_t> totals(kNumFaultClasses, 0);
    const std::uint64_t stepsPerJob = config_.numSteps();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        obs::RunReport::JobEntry entry;
        entry.configKey =
            jobs[i].workload.name + "/" + jobs[i].policy.slug();
        entry.fromCache = status.fromCache[i] != 0;
        entry.resumed = status.resumed[i] != 0;
        entry.failed = status.failed[i] != 0;
        entry.attempts = status.attempts[i];
        const bool computed = !entry.fromCache && !entry.resumed &&
            !entry.failed;
        entry.steps = computed ? stepsPerJob : 0;
        entry.emergencies = out[i].emergencies;
        entry.maxOvershootC = out[i].maxOvershoot;
        entry.settleTimeS = out[i].settleTime;
        entry.thresholdExceeded = out[i].emergencies > 0;
        for (std::size_t c = 0; c < out[i].faultClassCounts.size();
             ++c) {
            const std::uint64_t n = out[i].faultClassCounts[c];
            if (n == 0 || c >= kNumFaultClasses)
                continue;
            entry.faultCounts.emplace_back(
                faultClassName(static_cast<FaultClass>(c)), n);
            totals[c] += n;
        }
        entry.fallbackSibling = out[i].fallbackSibling;
        entry.fallbackChipWide = out[i].fallbackChipWide;
        entry.failSafe = out[i].failSafeActivations;
        if (entry.fromCache)
            ++report.cachedJobs;
        if (entry.resumed)
            ++report.resumedJobs;
        if (entry.attempts > 1)
            ++report.retriedJobs;
        if (entry.failed)
            ++report.failedJobs;
        report.totalSteps += entry.steps;
        report.jobEntries.push_back(std::move(entry));
    }
    for (std::size_t c = 0; c < kNumFaultClasses; ++c)
        if (totals[c] > 0)
            report.faultTotals.emplace_back(
                faultClassName(static_cast<FaultClass>(c)),
                totals[c]);

    if (registry) {
        const obs::MetricsSnapshot after = obs::takeSnapshot(*registry);
        const std::uint64_t stepsBefore = before.counter("sim.steps");
        const std::uint64_t stepsAfter = after.counter("sim.steps");
        if (stepsAfter > stepsBefore)
            report.totalSteps = stepsAfter - stepsBefore;
        report.busySeconds = after.gauge("runmany.busy_seconds") -
            before.gauge("runmany.busy_seconds");
        for (std::size_t p = 0; p < obs::kNumPhases; ++p) {
            const char *name =
                obs::phaseName(static_cast<obs::Phase>(p));
            const std::string base = std::string("phase.") + name;
            const std::uint64_t calls =
                after.counter(base + ".calls") -
                before.counter(base + ".calls");
            if (calls == 0)
                continue;
            report.phases.push_back(
                {name,
                 after.gauge(base + ".seconds") -
                     before.gauge(base + ".seconds"),
                 calls});
        }
    }

    report.stepsPerSecond = wallSeconds > 0.0
        ? static_cast<double>(report.totalSteps) / wallSeconds
        : 0.0;
    lastReport_ = std::move(report);
}

std::vector<RunMetrics>
Experiment::runAllWorkloads(const PolicyConfig &policy)
{
    RunRequest request;
    for (const auto &workload : table4Workloads())
        request.add(workload, policy);
    return run(request);
}

double
Experiment::averageBips(const std::vector<RunMetrics> &runs)
{
    if (runs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &m : runs)
        sum += m.bips();
    return sum / static_cast<double>(runs.size());
}

double
Experiment::averageDuty(const std::vector<RunMetrics> &runs)
{
    if (runs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &m : runs)
        sum += m.dutyCycle;
    return sum / static_cast<double>(runs.size());
}

double
Experiment::relativeThroughput(const std::vector<RunMetrics> &runs,
                               const std::vector<RunMetrics> &baseline)
{
    if (runs.size() != baseline.size() || runs.empty())
        panic("relativeThroughput needs matched run sets");
    double sum = 0.0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (baseline[i].bips() <= 0.0)
            panic("baseline run has zero throughput");
        sum += runs[i].bips() / baseline[i].bips();
    }
    return sum / static_cast<double>(runs.size());
}

MobileThermalReading
measureMobileSteadyState(const std::string &benchmark,
                         const std::string &traceCacheDir)
{
    const BenchmarkProfile &profile = findProfile(benchmark);

    // Mobile platform: Banias-class core, package, and power model.
    TraceBuilderConfig traceConfig;
    traceConfig.core = CoreConfig::mobile();
    traceConfig.power = PowerModelParams::mobileCalibrated();
    traceConfig.cacheDir = traceCacheDir;

    DtmConfig dtm;
    dtm.package = PackageParams::mobile();
    dtm.power = traceConfig.power;
    dtm.leakage = LeakageParams::mobile();

    ChipModel chip(makeMobileFloorplan(), dtm);
    TraceBuilder builder(traceConfig);
    const PowerTrace trace = builder.build(profile);

    // The notebook's single ACPI diode sits at the edge of the die
    // (we use the i-cache block bordering the L2) and reads in whole
    // degrees Celsius.
    const std::size_t diodeBlock = chip.blockOf(0, UnitKind::ICache);

    // Steady temperature of a set of trace intervals: average the
    // per-unit powers, close the leakage loop, and solve.
    auto steadyDiode = [&](std::size_t beginPt, std::size_t endPt) {
        PerUnit<double> avg(0.0);
        for (std::size_t i = beginPt; i < endPt; ++i)
            for (std::size_t u = 0; u < numUnitKinds; ++u)
                avg[static_cast<UnitKind>(u)] +=
                    trace.point(i).power[static_cast<UnitKind>(u)];
        for (auto &v : avg)
            v /= static_cast<double>(endPt - beginPt);

        Vector powers(chip.floorplan().numBlocks(), 0.0);
        for (UnitKind kind : coreUnitKinds())
            powers[chip.blockOf(0, kind)] = avg[kind];
        powers[chip.l2Block()] = avg[UnitKind::L2];

        Vector temps = chip.network().steadyState(powers);
        for (int iter = 0; iter < 4; ++iter) {
            Vector withLeak = powers;
            chip.leakage().addLeakage(
                temps,
                [&](std::size_t) { return dtm.power.nominalVdd; },
                withLeak);
            temps = chip.network().steadyState(withLeak);
        }
        return temps[diodeBlock];
    };

    MobileThermalReading out;
    out.benchmark = benchmark;
    out.category = benchCategoryName(profile.category);

    // Whole-trace steady temperature.
    const double overall = steadyDiode(0, trace.numPoints());

    // Per-phase steady temperatures (phases partition the trace).
    double minPhase = overall;
    double maxPhase = overall;
    std::size_t begin = 0;
    std::size_t phase = profile.phaseAt(0, trace.numPoints());
    for (std::size_t i = 1; i <= trace.numPoints(); ++i) {
        const std::size_t p = i < trace.numPoints()
            ? profile.phaseAt(i, trace.numPoints())
            : phase + 1;
        if (p != phase) {
            const double t = steadyDiode(begin, i);
            minPhase = std::min(minPhase, t);
            maxPhase = std::max(maxPhase, t);
            begin = i;
            phase = p;
        }
    }

    // ACPI rounding to whole degrees.
    out.steadyTemp = std::round(overall);
    out.minPhaseTemp = std::round(minPhase);
    out.maxPhaseTemp = std::round(maxPhase);
    out.oscillating = out.maxPhaseTemp - out.minPhaseTemp > 2.0;
    return out;
}

} // namespace coolcmp
