#include "core/chip_model.hh"

#include "util/logging.hh"

namespace coolcmp {

namespace {

/** Wrap a hand-built floorplan into a spec with homogeneous cores. */
FloorplanSpec
wrapFloorplan(const Floorplan &plan, const std::string &name)
{
    FloorplanSpec spec;
    spec.name = name;
    spec.layers = plan.numLayers();
    spec.blocks = plan.blocks();
    spec.cores.assign(static_cast<std::size_t>(plan.numCores()),
                      CoreSpec{});
    return spec;
}

/** Per-block leakage multipliers from the owning core's class. */
std::vector<double>
leakageScales(const FloorplanSpec &spec)
{
    std::vector<double> scales;
    scales.reserve(spec.blocks.size());
    for (const Block &blk : spec.blocks)
        scales.push_back(
            blk.core < 0
                ? 1.0
                : spec.cores[static_cast<std::size_t>(blk.core)]
                      .leakageScale);
    return scales;
}

} // namespace

ChipModel::ChipModel(int numCores, const DtmConfig &config)
    : ChipModel(paperCmpSpec(numCores), config)
{
}

ChipModel::ChipModel(Floorplan floorplan, const DtmConfig &config)
    : ChipModel(wrapFloorplan(floorplan, "custom"), config)
{
}

ChipModel::ChipModel(const FloorplanSpec &spec, const DtmConfig &config)
    : spec_(spec), specText_(spec_.toText()), specHash_(spec_.hash()),
      floorplan_(spec_.materialize()),
      network_(floorplan_,
               config.package.fittedTo(floorplan_.chipArea())),
      leakage_(floorplan_, config.leakage, leakageScales(spec_)),
      stepSeconds_(config.stepSeconds()),
      disc_(ZohPropagator::makeDiscretization(network_, stepSeconds_)),
      l2Block_(floorplan_.indexOf(-1, UnitKind::L2))
{
    buildIndex();
}

void
ChipModel::buildIndex()
{
    const auto cores = static_cast<std::size_t>(floorplan_.numCores());
    blockIndex_.assign(cores * numCoreUnitKinds, 0);
    for (std::size_t c = 0; c < cores; ++c)
        for (UnitKind kind : coreUnitKinds())
            blockIndex_[c * numCoreUnitKinds +
                        static_cast<std::size_t>(kind)] =
                floorplan_.indexOf(static_cast<int>(c), kind);
}

std::unique_ptr<ZohPropagator>
ChipModel::makeSolver(double dt, double romTolerance) const
{
    if (romTolerance > 0.0)
        return std::make_unique<ReducedZohPropagator>(
            reducedModel(dt, romTolerance));
    if (dt == stepSeconds_)
        return std::make_unique<ZohPropagator>(network_, dt, disc_);
    std::lock_guard<std::mutex> lock(discCacheMutex_);
    auto &disc = discCache_[dt];
    if (!disc)
        disc = ZohPropagator::makeDiscretization(network_, dt);
    return std::make_unique<ZohPropagator>(network_, dt, disc);
}

std::shared_ptr<const ReducedThermalModel>
ChipModel::reducedModel(double dt, double tolerance) const
{
    std::lock_guard<std::mutex> lock(discCacheMutex_);
    auto &model = reducedCache_[{dt, tolerance}];
    if (!model) {
        // Reuse the matching dense discretization for the selection
        // cross-check instead of rebuilding the matrix exponential.
        std::shared_ptr<const ZohDiscretization> full;
        if (dt == stepSeconds_) {
            full = disc_;
        } else {
            auto &cached = discCache_[dt];
            if (!cached)
                cached =
                    ZohPropagator::makeDiscretization(network_, dt);
            full = cached;
        }
        ReducedOptions opts;
        opts.tolerance = tolerance;
        model = std::make_shared<const ReducedThermalModel>(
            network_, dt, opts, std::move(full));
    }
    return model;
}

std::size_t
ChipModel::blockOf(int core, UnitKind kind) const
{
    if (kind == UnitKind::L2)
        return l2Block_;
    if (core < 0 || core >= floorplan_.numCores())
        panic("blockOf: bad core ", core);
    return blockIndex_[static_cast<std::size_t>(core) *
                           numCoreUnitKinds +
                       static_cast<std::size_t>(kind)];
}

} // namespace coolcmp
