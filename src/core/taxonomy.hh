/**
 * @file
 * The paper's DTM taxonomy (Table 2): three orthogonal axes forming
 * twelve thermal-management schemes.
 */

#ifndef COOLCMP_CORE_TAXONOMY_HH
#define COOLCMP_CORE_TAXONOMY_HH

#include <string>
#include <vector>

namespace coolcmp {

/** Axis 1: the low-level throttling mechanism. */
enum class ThrottleMechanism {
    StopGo, ///< freeze the clock for a fixed stall on a thermal trip
    Dvfs,   ///< PI-controlled voltage/frequency scaling
};

/** Axis 2: the scale the mechanism is applied at. */
enum class ControlScope {
    Global,      ///< one decision for the whole chip
    Distributed, ///< an independent controller per core
};

/** Axis 3: the OS migration policy layered on top. */
enum class MigrationKind {
    None,
    CounterBased, ///< performance-counter thermal proxies (Section 6.1)
    SensorBased,  ///< thread-core thermal-trend table (Section 6.3)
};

/** One cell of Table 2. */
struct PolicyConfig
{
    ThrottleMechanism mechanism = ThrottleMechanism::StopGo;
    ControlScope scope = ControlScope::Distributed;
    MigrationKind migration = MigrationKind::None;

    /** Short label, e.g. "Dist. DVFS + sensor-based migration". */
    std::string label() const;

    /** Compact label, e.g. "dist-dvfs-sensor". */
    std::string slug() const;

    bool operator==(const PolicyConfig &other) const = default;
};

/** The paper's baseline everything is normalized to. */
constexpr PolicyConfig
baselinePolicy()
{
    return {ThrottleMechanism::StopGo, ControlScope::Distributed,
            MigrationKind::None};
}

/** All twelve policy combinations, in Table 2 order (mechanism fastest,
 *  then scope, then migration). */
const std::vector<PolicyConfig> &allPolicies();

/** The four non-migration policies of Section 5. */
const std::vector<PolicyConfig> &nonMigrationPolicies();

const std::string &mechanismName(ThrottleMechanism mechanism);
const std::string &scopeName(ControlScope scope);
const std::string &migrationName(MigrationKind kind);

} // namespace coolcmp

#endif // COOLCMP_CORE_TAXONOMY_HH
