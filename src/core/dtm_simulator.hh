/**
 * @file
 * The thermal/timing DTM simulator (Figure 2 of the paper): consumes
 * per-benchmark power traces, applies a DTM policy (throttling scope +
 * mechanism + migration), models DVFS/stall/migration timing, closes
 * the leakage-temperature loop through the RC thermal model, and
 * reports instruction throughput and adjusted duty cycle.
 *
 * Time advances in fixed steps of one trace interval (100k cycles at
 * nominal frequency = 27.78 us). Within a step each core executes
 * s * avail * intervalCycles cycles, where s is its frequency scale
 * and avail is the fraction of the step not blocked by stop-go stalls,
 * PLL relock penalties, or migration context switches.
 */

#ifndef COOLCMP_CORE_DTM_SIMULATOR_HH
#define COOLCMP_CORE_DTM_SIMULATOR_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/chip_model.hh"
#include "core/dtm_config.hh"
#include "core/metrics.hh"
#include "core/migration.hh"
#include "core/step_sample.hh"
#include "core/taxonomy.hh"
#include "core/throttle.hh"
#include "fault/injector.hh"
#include "obs/phase_timer.hh"
#include "os/kernel.hh"
#include "power/trace.hh"
#include "thermal/sensor.hh"

namespace coolcmp::obs {
class Counter;
class Histogram;
} // namespace coolcmp::obs

namespace coolcmp {

/** One DTM simulation: a policy, a chip, and a set of processes. */
class DtmSimulator
{
  public:
    /**
     * @param chip shared physical chip model
     * @param policy the Table 2 cell to evaluate
     * @param config DTM constants
     * @param traces one power trace per process (>= numCores; process
     * i initially runs on core i)
     */
    DtmSimulator(std::shared_ptr<const ChipModel> chip,
                 const PolicyConfig &policy, const DtmConfig &config,
                 std::vector<std::shared_ptr<const PowerTrace>> traces);

    /** Optional per-step probe (sampled every `stride` steps). */
    void setSampleHook(std::function<void(const StepSample &)> hook,
                       std::uint64_t stride = 1);

    /** Run for config.duration and return the metrics. */
    RunMetrics run();

    // --- Cooperative stepping (the batched engine's view of run()).
    //     run() is exactly: beginRun(); while (!done()) {
    //     gatherPowers(); stepThermal(); finishStep(); }
    //     return finishRun(); — BatchRunner replaces stepThermal()
    //     with one shared GEMM across many lock-stepped simulators. ---

    /** Reset the run state; must precede the first step. */
    void beginRun();

    /** True once every step of config.duration has been taken. */
    bool done() const { return run_.step >= run_.steps; }

    /** Phase 1 of one step: advance the OS, execute one interval on
     *  each core, and close the leakage loop at the step-start state.
     *  Returns the block powers the thermal step must integrate. */
    const Vector &gatherPowers();

    /** Phase 2 (sequential path): one exact thermal step. */
    void stepThermal();

    /** Phase 3: sensors, throttle control, OS tick, probe; advances
     *  the step counter. */
    void finishStep();

    /** Finalize and return the metrics; ends the run. */
    RunMetrics finishRun();

    /** The exact-step propagator (batched engine packs its state). */
    ZohPropagator &propagator() { return *solver_; }

    /** Access to the kernel after a run (assignments, counters). */
    const OsKernel &kernel() const { return *kernel_; }

    /** Access to the migration policy after a run. */
    const MigrationPolicy &migrationPolicy() const { return *migration_; }

    /** The run's fault injector; null when the config has no fault
     *  plan (the fault-free hot path is untouched). */
    const FaultInjector *faultInjector() const
    {
        return injector_.get();
    }

  private:
    std::shared_ptr<const ChipModel> chip_;
    PolicyConfig policy_;
    DtmConfig config_;
    std::unique_ptr<OsKernel> kernel_;
    ThrottleBank throttles_;
    std::unique_ptr<MigrationPolicy> migration_;
    std::unique_ptr<ZohPropagator> solver_;
    std::vector<CoreSensors> sensors_;
    std::unique_ptr<FaultInjector> injector_;
    double l2IdleWatts_;

    // Per-core heterogeneity calibration from the chip's
    // FloorplanSpec, cached out of the hot loop. All 1.0 on a
    // homogeneous chip — an exact IEEE no-op, keeping the paper model
    // bit-identical to the pre-spec code.
    std::vector<double> corePowerScale_;
    std::vector<double> coreFreqCap_;

    std::function<void(const StepSample &)> hook_;
    std::uint64_t hookStride_ = 1;

    /** Mutable state of one run, shared by the cooperative phases. */
    struct RunState
    {
        RunMetrics metrics;
        std::uint64_t step = 0;  ///< next step index
        std::uint64_t steps = 0; ///< total steps in the run
        double dt = 0.0;
        double cyclesPerStep = 0.0;
        bool active = false;

        // Observability handles, resolved once per run.
        obs::Tracer *tracer = nullptr;
        obs::Counter *stepCounter = nullptr;
        obs::Counter *emergencyCounter = nullptr;
        obs::Histogram *tempHist = nullptr;
        bool inEmergency = false;

        // Phase profiling: single-thread accumulator, flushed to the
        // registry in finishRun(). `profile` stays null when no
        // registry is attached, so the telemetry-off path pays one
        // pointer test per phase and zero clock reads.
        obs::PhaseProfile profileSlots;
        obs::PhaseProfile *profile = nullptr;

        Vector blockPowers;
        std::vector<double> coreHottest;
        std::vector<double> intRf;
        std::vector<double> fpRf;

        /** Diode trust flags from the fault layer (sized only when an
         *  injector is attached). */
        std::vector<char> intHealthy;
        std::vector<char> fpHealthy;

        // OS-tick window accumulators.
        double tick = 0.0;
        double nextTick = 0.0;
        std::vector<double> tickStartIntRf;
        std::vector<double> tickStartFpRf;
        std::vector<double> winFreqCubed;
        std::vector<double> winAvail;
        double winSteps = 0.0;
        bool tickPrimed = false;
    };

    RunState run_;

    /** Initialize the thermal state at a regulated operating point. */
    void initializeThermalState();

    /** Average per-block dynamic power with the initial assignment. */
    Vector averageBlockPowers() const;
};

} // namespace coolcmp

#endif // COOLCMP_CORE_DTM_SIMULATOR_HH
