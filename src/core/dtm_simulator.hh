/**
 * @file
 * The thermal/timing DTM simulator (Figure 2 of the paper): consumes
 * per-benchmark power traces, applies a DTM policy (throttling scope +
 * mechanism + migration), models DVFS/stall/migration timing, closes
 * the leakage-temperature loop through the RC thermal model, and
 * reports instruction throughput and adjusted duty cycle.
 *
 * Time advances in fixed steps of one trace interval (100k cycles at
 * nominal frequency = 27.78 us). Within a step each core executes
 * s * avail * intervalCycles cycles, where s is its frequency scale
 * and avail is the fraction of the step not blocked by stop-go stalls,
 * PLL relock penalties, or migration context switches.
 */

#ifndef COOLCMP_CORE_DTM_SIMULATOR_HH
#define COOLCMP_CORE_DTM_SIMULATOR_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/chip_model.hh"
#include "core/dtm_config.hh"
#include "core/metrics.hh"
#include "core/migration.hh"
#include "core/step_sample.hh"
#include "core/taxonomy.hh"
#include "core/throttle.hh"
#include "os/kernel.hh"
#include "power/trace.hh"
#include "thermal/sensor.hh"

namespace coolcmp {

/** One DTM simulation: a policy, a chip, and a set of processes. */
class DtmSimulator
{
  public:
    /**
     * @param chip shared physical chip model
     * @param policy the Table 2 cell to evaluate
     * @param config DTM constants
     * @param traces one power trace per process (>= numCores; process
     * i initially runs on core i)
     */
    DtmSimulator(std::shared_ptr<const ChipModel> chip,
                 const PolicyConfig &policy, const DtmConfig &config,
                 std::vector<std::shared_ptr<const PowerTrace>> traces);

    /** Optional per-step probe (sampled every `stride` steps). */
    void setSampleHook(std::function<void(const StepSample &)> hook,
                       std::uint64_t stride = 1);

    /** Run for config.duration and return the metrics. */
    RunMetrics run();

    /** Access to the kernel after a run (assignments, counters). */
    const OsKernel &kernel() const { return *kernel_; }

    /** Access to the migration policy after a run. */
    const MigrationPolicy &migrationPolicy() const { return *migration_; }

  private:
    std::shared_ptr<const ChipModel> chip_;
    PolicyConfig policy_;
    DtmConfig config_;
    std::unique_ptr<OsKernel> kernel_;
    ThrottleBank throttles_;
    std::unique_ptr<MigrationPolicy> migration_;
    std::unique_ptr<ZohPropagator> solver_;
    std::vector<CoreSensors> sensors_;
    double l2IdleWatts_;

    std::function<void(const StepSample &)> hook_;
    std::uint64_t hookStride_ = 1;

    /** Initialize the thermal state at a regulated operating point. */
    void initializeThermalState();

    /** Average per-block dynamic power with the initial assignment. */
    Vector averageBlockPowers() const;
};

} // namespace coolcmp

#endif // COOLCMP_CORE_DTM_SIMULATOR_HH
