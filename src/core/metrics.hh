/**
 * @file
 * Run metrics: raw instruction throughput (BIPS) and the paper's
 * adjusted duty cycle (Section 3.5), plus thermal-safety accounting.
 */

#ifndef COOLCMP_CORE_METRICS_HH
#define COOLCMP_CORE_METRICS_HH

#include <cstdint>
#include <vector>

namespace coolcmp {

/** Results of one DTM simulation run. */
struct RunMetrics
{
    double duration = 0.0;          ///< simulated silicon time, s
    double totalInstructions = 0.0; ///< committed across all cores

    /** Adjusted duty cycle: work-weighted active fraction, where DVFS
     *  contributions are scaled by the dynamic frequency and penalty
     *  time counts as no work (Section 3.5). */
    double dutyCycle = 0.0;

    /** Billions of instructions per second across the chip. */
    double bips() const
    {
        return duration > 0.0 ? totalInstructions / duration / 1e9
                              : 0.0;
    }

    // --- Thermal safety. ---
    double peakTemp = 0.0;           ///< hottest block sample seen, C
    std::uint64_t emergencies = 0;   ///< samples above the threshold

    // --- Control-loop health (relative to the DVFS setpoint). ---
    double maxOvershoot = 0.0; ///< peak hottest-block excess above the
                               ///< setpoint, C; 0 when never exceeded
    double settleTime = 0.0;   ///< last simulated time the hottest
                               ///< block sat above setpoint +
                               ///< settleBand; 0 when it never did

    // --- Mechanism accounting. ---
    std::uint64_t throttleActuations = 0; ///< trips or PLL transitions
    std::uint64_t migrations = 0;         ///< cores switched
    double migrationPenaltyTime = 0.0;    ///< total context-switch time

    // --- Fault exposure (src/fault; all zero on clean runs). ---
    /** Injected-fault windows opened, indexed by FaultClass; empty
     *  when the run had no fault plan. */
    std::vector<std::uint64_t> faultClassCounts;

    /** Degradation-ladder activations: controller fed by the sibling
     *  diode, the chip-wide hottest healthy diode, or the fail-safe
     *  stop-go regime. */
    std::uint64_t fallbackSibling = 0;
    std::uint64_t fallbackChipWide = 0;
    std::uint64_t failSafeActivations = 0;

    // --- Per-core breakdown. ---
    std::vector<double> coreInstructions;
    std::vector<double> coreDuty;
    std::vector<double> coreMeanFreq;

    /** Per-process instruction counts (fairness checks). */
    std::vector<double> processInstructions;
};

} // namespace coolcmp

#endif // COOLCMP_CORE_METRICS_HH
